"""Unit tests for repro.frame IO, concat, pivot and describe."""

import numpy as np
import pytest

from repro import frame as pf
from repro.frame.io import csv_row_count, parquet_metadata


@pytest.fixture
def df():
    return pf.DataFrame(
        {
            "i": [1, 2, 3],
            "f": [1.5, np.nan, 3.5],
            "s": ["x", None, "z"],
        }
    )


class TestCsv:
    def test_roundtrip(self, df, tmp_path):
        path = tmp_path / "t.csv"
        df.to_csv(path)
        back = pf.read_csv(path)
        assert back["i"].to_list() == [1, 2, 3]
        f = back["f"].to_list()
        assert f[0] == 1.5 and np.isnan(f[1])
        assert back["s"].to_list() == ["x", None, "z"]

    def test_usecols(self, df, tmp_path):
        path = tmp_path / "t.csv"
        df.to_csv(path)
        back = pf.read_csv(path, usecols=["s", "i"])
        assert back.columns.to_list() == ["s", "i"]

    def test_usecols_missing_raises(self, df, tmp_path):
        path = tmp_path / "t.csv"
        df.to_csv(path)
        with pytest.raises(KeyError):
            pf.read_csv(path, usecols=["nope"])

    def test_nrows_skiprows(self, df, tmp_path):
        path = tmp_path / "t.csv"
        df.to_csv(path)
        back = pf.read_csv(path, skiprows=1, nrows=1)
        assert back["i"].to_list() == [2]

    def test_parse_dates(self, tmp_path):
        path = tmp_path / "d.csv"
        pf.DataFrame({"d": ["2020-01-02", "2021-12-31"]}).to_csv(path)
        back = pf.read_csv(path, parse_dates=["d"])
        assert back["d"].dtype.kind == "M"
        assert back["d"].dt.year.to_list() == [2020.0, 2021.0]

    def test_dtype_override(self, df, tmp_path):
        path = tmp_path / "t.csv"
        df.to_csv(path)
        back = pf.read_csv(path, dtype={"i": np.float64})
        assert back["i"].dtype == np.float64

    def test_row_count(self, df, tmp_path):
        path = tmp_path / "t.csv"
        df.to_csv(path)
        assert csv_row_count(path) == 3

    def test_int_column_with_blanks_becomes_float(self, tmp_path):
        path = tmp_path / "b.csv"
        path.write_text("a\n1\n\n3\n")
        back = pf.read_csv(path)
        # blank line is skipped entirely; ints stay ints
        assert back["a"].to_list() == [1, 3]


class TestParquet:
    def test_roundtrip(self, df, tmp_path):
        path = tmp_path / "t.rpq"
        df.to_parquet(path)
        back = pf.read_parquet(path)
        assert back["i"].to_list() == [1, 2, 3]
        assert back["s"].to_list() == ["x", None, "z"]
        f = back["f"].to_list()
        assert f[0] == 1.5 and np.isnan(f[1])

    def test_column_subset(self, df, tmp_path):
        path = tmp_path / "t.rpq"
        df.to_parquet(path)
        back = pf.read_parquet(path, columns=["s"])
        assert back.columns.to_list() == ["s"]

    def test_row_range(self, df, tmp_path):
        path = tmp_path / "t.rpq"
        df.to_parquet(path)
        back = pf.read_parquet(path, row_range=(1, 3))
        assert back["i"].to_list() == [2, 3]

    def test_metadata_only(self, df, tmp_path):
        path = tmp_path / "t.rpq"
        df.to_parquet(path)
        meta = parquet_metadata(path)
        assert meta["n_rows"] == 3
        assert [c["name"] for c in meta["columns"]] == ["i", "f", "s"]

    def test_missing_column_raises(self, df, tmp_path):
        path = tmp_path / "t.rpq"
        df.to_parquet(path)
        with pytest.raises(KeyError):
            pf.read_parquet(path, columns=["nope"])

    def test_datetime_roundtrip(self, tmp_path):
        df = pf.DataFrame(
            {"d": np.array(["2020-01-02", "NaT"], dtype="datetime64[D]")}
        )
        path = tmp_path / "d.rpq"
        df.to_parquet(path)
        back = pf.read_parquet(path)
        assert back["d"].dtype.kind == "M"
        assert back["d"].isna().to_list() == [False, True]


class TestConcat:
    def test_rows_ignore_index(self):
        a = pf.DataFrame({"x": [1, 2]})
        b = pf.DataFrame({"x": [3]})
        out = pf.concat([a, b], ignore_index=True)
        assert out["x"].to_list() == [1, 2, 3]
        assert out.index.to_list() == [0, 1, 2]

    def test_rows_keep_index(self):
        a = pf.DataFrame({"x": [1]}, index=[10])
        b = pf.DataFrame({"x": [2]}, index=[20])
        out = pf.concat([a, b])
        assert out.index.to_list() == [10, 20]

    def test_missing_columns_filled_with_nan(self):
        a = pf.DataFrame({"x": [1]})
        b = pf.DataFrame({"y": [2]})
        out = pf.concat([a, b], ignore_index=True)
        assert np.isnan(out["y"].to_list()[0])
        assert np.isnan(out["x"].to_list()[1])

    def test_dtype_promotion(self):
        a = pf.DataFrame({"x": np.array([1], dtype=np.int64)})
        b = pf.DataFrame({"x": np.array([2.5])})
        out = pf.concat([a, b], ignore_index=True)
        assert out["x"].dtype == np.float64

    def test_series_concat(self):
        out = pf.concat([pf.Series([1]), pf.Series([2])], ignore_index=True)
        assert out.to_list() == [1, 2]

    def test_axis1(self):
        a = pf.DataFrame({"x": [1, 2]})
        b = pf.DataFrame({"y": [3, 4]})
        out = pf.concat([a, b], axis=1)
        assert out.columns.to_list() == ["x", "y"]

    def test_axis1_length_mismatch(self):
        with pytest.raises(ValueError):
            pf.concat([pf.DataFrame({"x": [1]}), pf.DataFrame({"y": [1, 2]})], axis=1)

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            pf.concat([])


class TestPivot:
    def test_basic(self):
        df = pf.DataFrame(
            {
                "r": ["a", "a", "b", "b"],
                "c": ["x", "y", "x", "x"],
                "v": [1.0, 2.0, 3.0, 5.0],
            }
        )
        out = df.pivot_table(values="v", index="r", columns="c", aggfunc="sum")
        assert out.index.to_list() == ["a", "b"]
        assert out["x"].to_list() == [1.0, 8.0]
        y = out["y"].to_list()
        assert y[0] == 2.0 and np.isnan(y[1])

    def test_mean_default(self):
        df = pf.DataFrame(
            {"r": ["a", "a"], "c": ["x", "x"], "v": [1.0, 3.0]}
        )
        out = df.pivot_table(values="v", index="r", columns="c")
        assert out["x"].to_list() == [2.0]

    def test_requires_index_and_columns(self):
        df = pf.DataFrame({"r": ["a"], "v": [1.0]})
        with pytest.raises(ValueError):
            df.pivot_table(values="v", index="r")


class TestDescribe:
    def test_statistics(self):
        df = pf.DataFrame({"v": [1.0, 2.0, 3.0, 4.0]})
        out = df.describe()
        assert out.loc["count", "v"] == 4.0
        assert out.loc["mean", "v"] == 2.5
        assert out.loc["50%", "v"] == 2.5
        assert out.loc["min", "v"] == 1.0 and out.loc["max", "v"] == 4.0

    def test_requires_numeric(self):
        with pytest.raises(ValueError):
            pf.DataFrame({"s": ["a"]}).describe()
