"""Unit tests for repro.frame.Series."""

import numpy as np
import pytest

from repro import frame as pf
from repro.frame.index import Index, RangeIndex


class TestConstruction:
    def test_from_list(self):
        s = pf.Series([1, 2, 3])
        assert s.dtype == np.int64
        assert len(s) == 3
        assert isinstance(s.index, RangeIndex)

    def test_from_array_with_index_and_name(self):
        s = pf.Series(np.array([1.0, 2.0]), index=["a", "b"], name="x")
        assert s.name == "x"
        assert s.index.to_list() == ["a", "b"]

    def test_scalar_broadcast(self):
        s = pf.Series(7, index=[0, 1, 2])
        assert s.to_list() == [7, 7, 7]

    def test_strings_become_object(self):
        s = pf.Series(["a", "bb"])
        assert s.dtype == object

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pf.Series([1, 2], index=[0, 1, 2])

    def test_copy_constructor_keeps_name(self):
        s = pf.Series(pf.Series([1], name="n"))
        assert s.name == "n"


class TestArithmetic:
    def test_scalar_ops(self):
        s = pf.Series([1.0, 2.0, 3.0])
        assert (s + 1).to_list() == [2.0, 3.0, 4.0]
        assert (s * 2).to_list() == [2.0, 4.0, 6.0]
        assert (10 - s).to_list() == [9.0, 8.0, 7.0]
        assert (s ** 2).to_list() == [1.0, 4.0, 9.0]

    def test_series_ops(self):
        a = pf.Series([1, 2, 3])
        b = pf.Series([10, 20, 30])
        assert (a + b).to_list() == [11, 22, 33]
        assert (b / a).to_list() == [10.0, 10.0, 10.0]

    def test_nan_propagates(self):
        s = pf.Series([1.0, np.nan])
        out = (s + 1).to_list()
        assert out[0] == 2.0 and np.isnan(out[1])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pf.Series([1, 2]) + pf.Series([1, 2, 3])

    def test_neg_abs(self):
        s = pf.Series([-1, 2])
        assert (-s).to_list() == [1, -2]
        assert s.abs().to_list() == [1, 2]


class TestComparisons:
    def test_scalar_compare(self):
        s = pf.Series([1, 5, 3])
        assert (s > 2).to_list() == [False, True, True]
        assert (s == 3).to_list() == [False, False, True]

    def test_object_compare(self):
        s = pf.Series(["a", "b", None])
        assert (s == "a").to_list() == [True, False, False]

    def test_logical_ops(self):
        a = pf.Series([True, True, False])
        b = pf.Series([True, False, False])
        assert (a & b).to_list() == [True, False, False]
        assert (a | b).to_list() == [True, True, False]
        assert (~a).to_list() == [False, False, True]


class TestMissingData:
    def test_isna_float(self):
        s = pf.Series([1.0, np.nan])
        assert s.isna().to_list() == [False, True]
        assert s.notna().to_list() == [True, False]

    def test_isna_object(self):
        s = pf.Series(["a", None])
        assert s.isna().to_list() == [False, True]

    def test_fillna(self):
        s = pf.Series([1.0, np.nan, 3.0])
        assert s.fillna(0.0).to_list() == [1.0, 0.0, 3.0]

    def test_fillna_object(self):
        s = pf.Series(["a", None])
        assert s.fillna("z").to_list() == ["a", "z"]

    def test_dropna(self):
        s = pf.Series([1.0, np.nan, 3.0])
        out = s.dropna()
        assert out.to_list() == [1.0, 3.0]
        assert out.index.to_list() == [0, 2]


class TestReductions:
    def test_sum_mean_skipna(self):
        s = pf.Series([1.0, np.nan, 3.0])
        assert s.sum() == 4.0
        assert s.mean() == 2.0
        assert s.count() == 2

    def test_min_max(self):
        s = pf.Series([3, 1, 2])
        assert s.min() == 1 and s.max() == 3

    def test_min_max_object(self):
        s = pf.Series(["b", "a", None])
        assert s.min() == "a" and s.max() == "b"

    def test_std_var(self):
        s = pf.Series([1.0, 2.0, 3.0, 4.0])
        assert s.var() == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert s.std() == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_var_single_value_is_nan(self):
        assert np.isnan(pf.Series([1.0]).var())

    def test_median_quantile(self):
        s = pf.Series([1.0, 2.0, 3.0, 100.0])
        assert s.median() == 2.5
        assert s.quantile(0.5) == 2.5

    def test_any_all(self):
        assert pf.Series([False, True]).any()
        assert not pf.Series([False, True]).all()

    def test_idxmax_idxmin(self):
        s = pf.Series([3.0, 9.0, 1.0], index=["a", "b", "c"])
        assert s.idxmax() == "b"
        assert s.idxmin() == "c"

    def test_empty_mean_is_nan(self):
        assert np.isnan(pf.Series(np.array([], dtype=np.float64)).mean())

    def test_cumsum_with_nan(self):
        s = pf.Series([1.0, np.nan, 2.0])
        out = s.cumsum().to_list()
        assert out[0] == 1.0 and np.isnan(out[1]) and out[2] == 3.0


class TestSelection:
    def test_boolean_mask_keeps_labels(self):
        s = pf.Series([10, 20, 30])
        out = s[s > 15]
        assert out.to_list() == [20, 30]
        assert out.index.to_list() == [1, 2]

    def test_iloc_int_slice_list(self):
        s = pf.Series([10, 20, 30])
        assert s.iloc[1] == 20
        assert s.iloc[1:].to_list() == [20, 30]
        assert s.iloc[[0, 2]].to_list() == [10, 30]

    def test_loc_label(self):
        s = pf.Series([1, 2], index=["x", "y"])
        assert s.loc["y"] == 2
        assert s.loc[["y", "x"]].to_list() == [2, 1]

    def test_head_tail(self):
        s = pf.Series(range(10))
        assert s.head(3).to_list() == [0, 1, 2]
        assert s.tail(2).to_list() == [8, 9]


class TestTransforms:
    def test_astype(self):
        assert pf.Series([1, 2]).astype(np.float64).dtype == np.float64
        assert pf.Series(["1", "2"]).astype(np.int64).to_list() == [1, 2]

    def test_map_dict(self):
        s = pf.Series(["a", "b", "c"])
        assert s.map({"a": 1, "b": 2}).to_list()[:2] == [1, 2]

    def test_map_callable_skips_na(self):
        s = pf.Series(["a", None])
        out = s.map(str.upper)
        assert out.to_list() == ["A", None]

    def test_isin(self):
        s = pf.Series([1, 2, 3])
        assert s.isin([1, 3]).to_list() == [True, False, True]

    def test_between(self):
        s = pf.Series([1, 5, 10])
        assert s.between(2, 10).to_list() == [False, True, True]
        assert s.between(1, 10, inclusive="neither").to_list() == [False, True, False]

    def test_where(self):
        s = pf.Series([1.0, 2.0, 3.0])
        out = s.where(s > 1.5, 0.0)
        assert out.to_list() == [0.0, 2.0, 3.0]

    def test_shift(self):
        s = pf.Series([1.0, 2.0, 3.0])
        out = s.shift(1).to_list()
        assert np.isnan(out[0]) and out[1:] == [1.0, 2.0]

    def test_clip_round(self):
        assert pf.Series([1.26, 9.0]).clip(upper=5.0).round(1).to_list() == [1.3, 5.0]


class TestUniqueness:
    def test_unique_preserves_first_seen_for_objects(self):
        s = pf.Series(["b", "a", "b"])
        assert list(s.unique()) == ["b", "a"]

    def test_nunique_dropna(self):
        s = pf.Series([1.0, 1.0, np.nan])
        assert s.nunique() == 1
        assert s.nunique(dropna=False) == 2

    def test_value_counts(self):
        s = pf.Series(["x", "y", "x"])
        vc = s.value_counts()
        assert vc.index.to_list()[0] == "x"
        assert vc.to_list() == [2, 1]

    def test_drop_duplicates(self):
        s = pf.Series([1, 2, 1, 3])
        assert s.drop_duplicates().to_list() == [1, 2, 3]

    def test_duplicated_keep_last(self):
        s = pf.Series([1, 2, 1])
        assert s.duplicated(keep="last").to_list() == [True, False, False]


class TestSorting:
    def test_sort_values(self):
        s = pf.Series([3, 1, 2])
        assert s.sort_values().to_list() == [1, 2, 3]
        assert s.sort_values(ascending=False).to_list() == [3, 2, 1]

    def test_sort_na_last(self):
        s = pf.Series([3.0, np.nan, 1.0])
        out = s.sort_values().to_list()
        assert out[:2] == [1.0, 3.0] and np.isnan(out[2])

    def test_sort_index(self):
        s = pf.Series([1, 2], index=["b", "a"])
        assert s.sort_index().to_list() == [2, 1]

    def test_nlargest_nsmallest(self):
        s = pf.Series([5, 1, 9, 3])
        assert s.nlargest(2).to_list() == [9, 5]
        assert s.nsmallest(2).to_list() == [1, 3]


class TestAccessors:
    def test_str_accessor_requires_object(self):
        with pytest.raises(AttributeError):
            pf.Series([1, 2]).str

    def test_str_methods(self):
        s = pf.Series(["Apple", "banana", None])
        assert s.str.lower().to_list() == ["apple", "banana", None]
        assert s.str.contains("an").to_list() == [False, True, False]
        assert s.str.startswith("A").to_list() == [True, False, False]
        lengths = s.str.len().to_list()
        assert lengths[:2] == [5.0, 6.0] and np.isnan(lengths[2])

    def test_str_slice_and_replace(self):
        s = pf.Series(["hello"])
        assert s.str.slice(0, 2).to_list() == ["he"]
        assert s.str.replace("l", "L").to_list() == ["heLLo"]

    def test_dt_accessor(self):
        s = pf.Series(np.array(["2020-03-15", "1999-12-31"], dtype="datetime64[D]"))
        assert s.dt.year.to_list() == [2020.0, 1999.0]
        assert s.dt.month.to_list() == [3.0, 12.0]
        assert s.dt.day.to_list() == [15.0, 31.0]


class TestConversion:
    def test_to_frame(self):
        df = pf.Series([1, 2], name="v").to_frame()
        assert df.columns.to_list() == ["v"]

    def test_equals(self):
        assert pf.Series([1.0, np.nan]).equals(pf.Series([1.0, np.nan]))
        assert not pf.Series([1.0]).equals(pf.Series([2.0]))

    def test_rename_and_reset_index(self):
        s = pf.Series([1], index=["a"], name="v")
        assert s.rename("w").name == "w"
        assert s.reset_index(drop=True).index.to_list() == [0]

    def test_nbytes_positive(self):
        assert pf.Series([1, 2, 3]).nbytes > 0
