"""Unit tests for repro.frame groupby."""

import numpy as np
import pytest

from repro import frame as pf
from repro.frame.groupby import factorize
from repro.frame.index import MultiIndex


@pytest.fixture
def df():
    return pf.DataFrame(
        {
            "k": ["b", "a", "b", "a", "c"],
            "k2": [1, 1, 2, 1, 2],
            "v": [1.0, 2.0, 3.0, 4.0, 5.0],
            "w": [10, 20, 30, 40, 50],
        }
    )


class TestFactorize:
    def test_int_codes_sorted_uniques(self):
        codes, uniques = factorize(np.array([3, 1, 3, 2]))
        assert uniques.tolist() == [1, 2, 3]
        assert codes.tolist() == [2, 0, 2, 1]

    def test_object_with_na(self):
        codes, uniques = factorize(np.array(["b", None, "a"], dtype=object))
        assert uniques.tolist() == ["a", "b"]
        assert codes.tolist() == [1, -1, 0]

    def test_float_nan_is_minus_one(self):
        codes, _ = factorize(np.array([1.0, np.nan]))
        assert codes.tolist() == [0, -1]

    def test_deterministic_across_chunks(self):
        # equal key sets factorize identically regardless of row order
        a = np.array(["y", "x", "z"], dtype=object)
        b = np.array(["z", "y", "x"], dtype=object)
        _, ua = factorize(a)
        _, ub = factorize(b)
        assert ua.tolist() == ub.tolist()


class TestSingleKeyAgg:
    def test_agg_dict(self, df):
        out = df.groupby("k").agg({"v": "sum"})
        assert out.index.to_list() == ["a", "b", "c"]
        assert out["v"].to_list() == [6.0, 4.0, 5.0]

    def test_agg_string_applies_to_all_values(self, df):
        out = df.groupby("k").agg("sum")
        assert set(out.columns.to_list()) == {"k2", "v", "w"}

    def test_shortcut_methods(self, df):
        assert df.groupby("k").sum()["v"].to_list() == [6.0, 4.0, 5.0]
        assert df.groupby("k").mean()["v"].to_list() == [3.0, 2.0, 5.0]
        assert df.groupby("k").min()["w"].to_list() == [20, 10, 50]
        assert df.groupby("k").max()["w"].to_list() == [40, 30, 50]
        assert df.groupby("k").count()["v"].to_list() == [2, 2, 1]

    def test_named_agg(self, df):
        out = df.groupby("k").agg(total=("v", "sum"), biggest=("w", "max"))
        assert out.columns.to_list() == ["total", "biggest"]
        assert out["biggest"].to_list() == [40, 30, 50]

    def test_agg_list_spec(self, df):
        out = df.groupby("k")["v"].agg(["sum", "mean"])
        assert out[("v", "sum")].to_list() == [6.0, 4.0, 5.0]

    def test_callable_agg(self, df):
        out = df.groupby("k").agg({"v": lambda s: s.max() - s.min()})
        assert out["v"].to_list() == [2.0, 2.0, 0.0]

    def test_size(self, df):
        assert df.groupby("k").size().to_list() == [2, 2, 1]

    def test_as_index_false(self, df):
        out = df.groupby("k", as_index=False).agg({"v": "sum"})
        assert out.columns.to_list() == ["k", "v"]
        assert out["k"].to_list() == ["a", "b", "c"]

    def test_first_last(self, df):
        out = df.groupby("k").agg({"v": "first"})
        assert out["v"].to_list() == [2.0, 1.0, 5.0]
        out = df.groupby("k").agg({"v": "last"})
        assert out["v"].to_list() == [4.0, 3.0, 5.0]

    def test_nunique(self, df):
        assert df.groupby("k").agg({"k2": "nunique"})["k2"].to_list() == [1, 2, 1]

    def test_std_var_median(self, df):
        out = df.groupby("k").agg({"v": "std"})
        assert out["v"].to_list()[0] == pytest.approx(np.std([2.0, 4.0], ddof=1))
        out = df.groupby("k").agg({"v": "median"})
        assert out["v"].to_list() == [3.0, 2.0, 5.0]

    def test_missing_key_column_raises(self, df):
        with pytest.raises(KeyError):
            df.groupby("nope")

    def test_missing_agg_column_raises(self, df):
        with pytest.raises(KeyError):
            df.groupby("k").agg({"nope": "sum"})

    def test_na_keys_dropped(self):
        df = pf.DataFrame({"k": ["a", None, "a"], "v": [1.0, 2.0, 3.0]})
        out = df.groupby("k").agg({"v": "sum"})
        assert out.index.to_list() == ["a"]
        assert out["v"].to_list() == [4.0]

    def test_nan_values_skipped_in_mean(self):
        df = pf.DataFrame({"k": ["a", "a"], "v": [1.0, np.nan]})
        assert df.groupby("k").agg({"v": "mean"})["v"].to_list() == [1.0]


class TestMultiKeyAgg:
    def test_multi_key_index(self, df):
        out = df.groupby(["k", "k2"]).agg({"v": "sum"})
        assert isinstance(out.index, MultiIndex)
        assert out.index.to_list() == [("a", 1), ("b", 1), ("b", 2), ("c", 2)]
        assert out["v"].to_list() == [6.0, 1.0, 3.0, 5.0]

    def test_multi_key_as_index_false(self, df):
        out = df.groupby(["k", "k2"], as_index=False).agg({"v": "sum"})
        assert out.columns.to_list() == ["k", "k2", "v"]
        assert out["k"].to_list() == ["a", "b", "b", "c"]

    def test_reset_index_on_multi(self, df):
        out = df.groupby(["k", "k2"]).agg({"v": "sum"}).reset_index()
        assert out.columns.to_list() == ["k", "k2", "v"]


class TestColumnSelection:
    def test_scalar_column_agg(self, df):
        s = df.groupby("k")["v"].sum()
        assert isinstance(s, pf.Series)
        assert s.to_list() == [6.0, 4.0, 5.0]

    def test_list_column_agg(self, df):
        out = df.groupby("k")[["v", "w"]].agg("sum")
        assert out.columns.to_list() == ["v", "w"]


class TestGroupIterationApply:
    def test_iteration(self, df):
        keys = [key for key, _ in df.groupby("k")]
        assert keys == ["a", "b", "c"]

    def test_apply(self, df):
        out = df.groupby("k").apply(lambda g: g.nlargest(1, "v"))
        assert sorted(out["v"].to_list()) == [3.0, 4.0, 5.0]

    def test_series_groupby(self, df):
        s = df["v"].groupby(df["k"])
        assert s.sum().to_list() == [6.0, 4.0, 5.0]
        assert s.count().to_list() == [2, 2, 1]

    def test_groupby_by_series(self, df):
        out = df.groupby(df["k"]).agg({"v": "sum"})
        assert out["v"].to_list() == [6.0, 4.0, 5.0]


class TestLargeGroupby:
    def test_reduceat_fast_path_matches_generic(self):
        rng = np.random.default_rng(0)
        n = 5000
        df = pf.DataFrame(
            {"k": rng.integers(0, 37, n), "v": rng.normal(size=n)}
        )
        fast = df.groupby("k").agg({"v": "sum"})
        slow = df.groupby("k").agg({"v": lambda s: s.sum()})
        np.testing.assert_allclose(
            np.asarray(fast["v"].values, dtype=np.float64),
            np.asarray(slow["v"].values, dtype=np.float64),
        )

    def test_group_count_matches_unique(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 100, 2000)
        df = pf.DataFrame({"k": keys, "v": np.ones(2000)})
        out = df.groupby("k").size()
        assert len(out) == len(np.unique(keys))
        assert out.values.sum() == 2000
