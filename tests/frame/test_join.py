"""Unit tests for repro.frame merge/join."""

import numpy as np
import pytest

from repro import frame as pf


@pytest.fixture
def left():
    return pf.DataFrame({"k": [1, 2, 2, 3], "lv": ["a", "b", "c", "d"]})


@pytest.fixture
def right():
    return pf.DataFrame({"k": [2, 2, 4], "rv": [20.0, 21.0, 40.0]})


class TestInner:
    def test_one_to_many(self, left, right):
        out = left.merge(right, on="k", how="inner")
        assert out["k"].to_list() == [2, 2, 2, 2]
        assert out["lv"].to_list() == ["b", "b", "c", "c"]
        assert out["rv"].to_list() == [20.0, 21.0, 20.0, 21.0]

    def test_no_matches(self):
        a = pf.DataFrame({"k": [1], "v": [1]})
        b = pf.DataFrame({"k": [2], "w": [2]})
        out = a.merge(b, on="k")
        assert len(out) == 0
        assert out.columns.to_list() == ["k", "v", "w"]

    def test_multi_key(self):
        a = pf.DataFrame({"k1": [1, 1], "k2": ["x", "y"], "v": [10, 11]})
        b = pf.DataFrame({"k1": [1, 1], "k2": ["y", "z"], "w": [20, 21]})
        out = a.merge(b, on=["k1", "k2"])
        assert out["v"].to_list() == [11]
        assert out["w"].to_list() == [20]

    def test_default_on_common_columns(self, left, right):
        out = left.merge(right)
        assert len(out) == 4


class TestLeftRightOuter:
    def test_left_preserves_order_and_fills_nan(self, left, right):
        out = left.merge(right, on="k", how="left")
        assert out["lv"].to_list() == ["a", "b", "b", "c", "c", "d"]
        rv = out["rv"].to_list()
        assert np.isnan(rv[0]) and np.isnan(rv[-1])

    def test_right(self, left, right):
        out = left.merge(right, on="k", how="right")
        assert out["k"].to_list() == [2, 2, 2, 2, 4]
        assert not np.isnan(out["rv"].to_list()[-1])
        assert out["lv"].to_list()[-1] is None

    def test_outer_includes_both_sides(self, left, right):
        out = left.merge(right, on="k", how="outer")
        assert sorted(out["k"].to_list()) == [1, 2, 2, 2, 2, 3, 4]
        # key column is coalesced: the right-only row keeps its key
        assert 4 in out["k"].to_list()

    def test_invalid_how(self, left, right):
        with pytest.raises(ValueError):
            left.merge(right, on="k", how="cross")


class TestKeysAndSuffixes:
    def test_left_on_right_on(self):
        a = pf.DataFrame({"ka": [1, 2], "v": [10, 20]})
        b = pf.DataFrame({"kb": [2, 3], "w": [200, 300]})
        out = a.merge(b, left_on="ka", right_on="kb")
        assert out["ka"].to_list() == [2]
        assert out["kb"].to_list() == [2]

    def test_missing_key_raises(self, left, right):
        with pytest.raises(KeyError):
            left.merge(right, on="nope")

    def test_suffixes_on_overlap(self):
        a = pf.DataFrame({"k": [1], "v": [10]})
        b = pf.DataFrame({"k": [1], "v": [99]})
        out = a.merge(b, on="k")
        assert out.columns.to_list() == ["k", "v_x", "v_y"]

    def test_custom_suffixes(self):
        a = pf.DataFrame({"k": [1], "v": [10]})
        b = pf.DataFrame({"k": [1], "v": [99]})
        out = a.merge(b, on="k", suffixes=("_l", "_r"))
        assert out.columns.to_list() == ["k", "v_l", "v_r"]

    def test_sort_true_sorts_by_key(self):
        a = pf.DataFrame({"k": [3, 1, 2], "v": [1, 2, 3]})
        b = pf.DataFrame({"k": [1, 2, 3], "w": [9, 8, 7]})
        out = a.merge(b, on="k", sort=True)
        assert out["k"].to_list() == [1, 2, 3]


class TestNaKeys:
    def test_nan_keys_never_match(self):
        a = pf.DataFrame({"k": [1.0, np.nan], "v": [1, 2]})
        b = pf.DataFrame({"k": [np.nan, 1.0], "w": [10, 20]})
        out = a.merge(b, on="k", how="inner")
        assert out["v"].to_list() == [1]

    def test_none_keys_never_match(self):
        a = pf.DataFrame({"k": ["x", None], "v": [1, 2]})
        b = pf.DataFrame({"k": [None, "x"], "w": [10, 20]})
        assert len(a.merge(b, on="k")) == 1


class TestMixedDtypeKeys:
    def test_int_float_keys_match(self):
        a = pf.DataFrame({"k": np.array([1, 2], dtype=np.int64), "v": [1, 2]})
        b = pf.DataFrame({"k": np.array([2.0, 3.0]), "w": [20, 30]})
        out = a.merge(b, on="k")
        assert out["v"].to_list() == [2]

    def test_string_keys(self):
        a = pf.DataFrame({"k": ["apple", "pear"], "v": [1, 2]})
        b = pf.DataFrame({"k": ["pear", "plum"], "w": [3, 4]})
        out = a.merge(b, on="k")
        assert out["k"].to_list() == ["pear"]


class TestJoinOnIndex:
    def test_join(self):
        a = pf.DataFrame({"v": [1, 2]}, index=["x", "y"])
        b = pf.DataFrame({"w": [10]}, index=["y"])
        out = a.join(b)
        assert out.index.to_list() == ["x", "y"]
        w = out["w"].to_list()
        assert np.isnan(w[0]) and w[1] == 10

    def test_join_overlap_requires_suffix(self):
        a = pf.DataFrame({"v": [1]}, index=["x"])
        b = pf.DataFrame({"v": [2]}, index=["x"])
        with pytest.raises(ValueError):
            a.join(b)
        out = a.join(b, lsuffix="_l", rsuffix="_r")
        assert set(out.columns.to_list()) == {"v_l", "v_r"}


class TestScale:
    def test_many_to_many_count(self):
        rng = np.random.default_rng(2)
        a = pf.DataFrame({"k": rng.integers(0, 50, 500), "v": np.arange(500)})
        b = pf.DataFrame({"k": rng.integers(0, 50, 300), "w": np.arange(300)})
        out = a.merge(b, on="k")
        # expected row count = sum over keys of count_a * count_b
        ka, ca = np.unique(a["k"].values, return_counts=True)
        kb, cb = np.unique(b["k"].values, return_counts=True)
        expected = sum(
            ca[i] * cb[np.where(kb == k)[0][0]]
            for i, k in enumerate(ka)
            if k in set(kb.tolist())
        )
        assert len(out) == expected

    def test_skewed_key_join(self):
        # one hot key dominating: the merge kernel must still be correct
        a = pf.DataFrame({"k": np.array([7] * 1000 + [1, 2]), "v": np.arange(1002)})
        b = pf.DataFrame({"k": np.array([7, 1]), "w": [70, 10]})
        out = a.merge(b, on="k")
        assert len(out) == 1001
        assert set(out["w"].to_list()) == {70, 10}
