"""Unit tests for frame reshape (cut/qcut/get_dummies/melt) and window
(rolling/rank/sample/corr/cov) modules."""

import numpy as np
import pytest

from repro import frame as pf


class TestCut:
    def test_int_bins(self):
        s = pf.Series([0.0, 2.5, 5.0, 7.5, 10.0])
        out = pf.cut(s, 2)
        assert out.nunique() == 2
        assert out.to_list()[0] == out.to_list()[1]
        assert out.to_list()[-1] != out.to_list()[0]

    def test_explicit_edges_and_labels(self):
        s = pf.Series([1.0, 15.0, 150.0])
        out = pf.cut(s, [0, 10, 100, 1000], labels=["s", "m", "l"])
        assert out.to_list() == ["s", "m", "l"]

    def test_out_of_range_is_missing(self):
        s = pf.Series([-5.0, 5.0])
        out = pf.cut(s, [0, 10])
        assert out.to_list()[0] is None

    def test_nan_propagates(self):
        out = pf.cut(pf.Series([1.0, np.nan]), [0, 10])
        assert out.to_list()[1] is None

    def test_includes_minimum(self):
        out = pf.cut(pf.Series([1.0, 2.0, 3.0]), 3)
        assert out.to_list()[0] is not None

    def test_wrong_label_count(self):
        with pytest.raises(ValueError):
            pf.cut(pf.Series([1.0]), [0, 1, 2], labels=["only-one"])

    def test_bad_edges(self):
        with pytest.raises(ValueError):
            pf.cut(pf.Series([1.0]), [3, 2, 1])


class TestQcut:
    def test_equal_counts(self):
        s = pf.Series(np.arange(100, dtype=np.float64))
        out = pf.qcut(s, 4, labels=list("abcd"))
        counts = out.value_counts()
        assert all(c == 25 for c in counts.to_list())

    def test_duplicate_quantiles_collapse(self):
        s = pf.Series([1.0] * 50 + [2.0] * 50)
        out = pf.qcut(s, 4)
        assert out.nunique() <= 2

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            pf.qcut(pf.Series([np.nan, np.nan]), 2)


class TestGetDummies:
    def test_series(self):
        out = pf.get_dummies(pf.Series(["a", "b", "a"], name="g"))
        assert out.columns.to_list() == ["g_a", "g_b"]
        assert out["g_a"].to_list() == [1.0, 0.0, 1.0]

    def test_frame_encodes_object_columns_only(self):
        df = pf.DataFrame({"g": ["x", "y"], "v": [1.0, 2.0]})
        out = pf.get_dummies(df)
        assert out.columns.to_list() == ["g_x", "g_y", "v"]

    def test_missing_values_encode_to_zero(self):
        out = pf.get_dummies(pf.Series(["a", None], name="g"))
        assert out.columns.to_list() == ["g_a"]
        assert out["g_a"].to_list() == [1.0, 0.0]


class TestMelt:
    def test_basic(self):
        df = pf.DataFrame({"id": [1, 2], "x": [10.0, 20.0], "y": [1.0, 2.0]})
        out = df.melt(id_vars="id")
        assert len(out) == 4
        assert out.columns.to_list() == ["id", "variable", "value"]
        assert out["variable"].to_list() == ["x", "x", "y", "y"]
        assert out["value"].to_list() == [10.0, 20.0, 1.0, 2.0]

    def test_value_vars_subset(self):
        df = pf.DataFrame({"id": [1], "x": [1.0], "y": [2.0]})
        out = df.melt(id_vars=["id"], value_vars=["y"])
        assert out["value"].to_list() == [2.0]

    def test_nothing_to_melt(self):
        df = pf.DataFrame({"id": [1]})
        with pytest.raises(ValueError):
            df.melt(id_vars="id")


class TestRolling:
    def test_mean(self):
        s = pf.Series([1.0, 2.0, 3.0, 4.0])
        out = s.rolling(2).mean().to_list()
        assert np.isnan(out[0]) and out[1:] == [1.5, 2.5, 3.5]

    def test_min_periods(self):
        s = pf.Series([1.0, 2.0, 3.0])
        out = s.rolling(3, min_periods=1).sum().to_list()
        assert out == [1.0, 3.0, 6.0]

    def test_nan_values_skipped(self):
        s = pf.Series([1.0, np.nan, 3.0])
        out = s.rolling(2, min_periods=1).mean().to_list()
        assert out == [1.0, 1.0, 3.0]

    def test_min_max_std(self):
        s = pf.Series([3.0, 1.0, 4.0])
        assert s.rolling(2).min().to_list()[1:] == [1.0, 1.0]
        assert s.rolling(2).max().to_list()[1:] == [3.0, 4.0]
        std = s.rolling(2).std().to_list()
        assert std[1] == pytest.approx(np.std([3.0, 1.0], ddof=1))

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            pf.Series([1.0]).rolling(0)


class TestRank:
    def test_average_ties(self):
        s = pf.Series([10.0, 20.0, 20.0, 30.0])
        assert s.rank().to_list() == [1.0, 2.5, 2.5, 4.0]

    def test_min_and_first_methods(self):
        s = pf.Series([5.0, 5.0, 1.0])
        assert s.rank(method="min").to_list() == [2.0, 2.0, 1.0]
        assert s.rank(method="first").to_list() == [2.0, 3.0, 1.0]

    def test_descending(self):
        s = pf.Series([1.0, 3.0, 2.0])
        assert s.rank(ascending=False).to_list() == [3.0, 1.0, 2.0]

    def test_nan_gets_nan_rank(self):
        out = pf.Series([1.0, np.nan]).rank().to_list()
        assert out[0] == 1.0 and np.isnan(out[1])


class TestSample:
    def test_n_rows(self):
        df = pf.DataFrame({"x": list(range(100))})
        out = df.sample(n=10, seed=0)
        assert len(out) == 10
        assert len(set(out["x"].to_list())) == 10  # without replacement

    def test_frac(self):
        df = pf.DataFrame({"x": list(range(100))})
        assert len(df.sample(frac=0.25, seed=1)) == 25

    def test_replace_allows_oversampling(self):
        df = pf.DataFrame({"x": [1, 2]})
        assert len(df.sample(n=10, seed=2, replace=True)) == 10

    def test_deterministic_seed(self):
        df = pf.DataFrame({"x": list(range(50))})
        a = df.sample(n=5, seed=7)["x"].to_list()
        b = df.sample(n=5, seed=7)["x"].to_list()
        assert a == b

    def test_requires_exactly_one_size(self):
        df = pf.DataFrame({"x": [1]})
        with pytest.raises(ValueError):
            df.sample()
        with pytest.raises(ValueError):
            df.sample(n=1, frac=0.5)


class TestCorrCov:
    def test_perfect_correlation(self):
        df = pf.DataFrame({"x": [1.0, 2.0, 3.0], "y": [2.0, 4.0, 6.0]})
        out = df.corr()
        assert out.loc["x", "y"] == pytest.approx(1.0)

    def test_anticorrelation(self):
        df = pf.DataFrame({"x": [1.0, 2.0, 3.0], "y": [3.0, 2.0, 1.0]})
        assert df.corr().loc["x", "y"] == pytest.approx(-1.0)

    def test_cov_matches_numpy(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=50), rng.normal(size=50)
        df = pf.DataFrame({"x": x, "y": y})
        assert df.cov().loc["x", "y"] == pytest.approx(np.cov(x, y)[0, 1])

    def test_nan_rows_dropped(self):
        df = pf.DataFrame({"x": [1.0, 2.0, np.nan, 4.0],
                           "y": [1.0, 2.0, 3.0, 4.0]})
        assert df.corr().loc["x", "y"] == pytest.approx(1.0)

    def test_object_columns_ignored(self):
        df = pf.DataFrame({"x": [1.0, 2.0], "s": ["a", "b"]})
        out = df.corr()
        assert out.columns.to_list() == ["x"]


class TestToDatetime:
    def test_parse_strings(self):
        out = pf.to_datetime(pf.Series(["2020-01-02", "1999-12-31"]))
        assert out.dtype.kind == "M"
        assert out.dt.year.to_list() == [2020.0, 1999.0]

    def test_coerce_bad_values(self):
        out = pf.to_datetime(pf.Series(["2020-01-02", "junk"]),
                             errors="coerce")
        assert out.isna().to_list() == [False, True]

    def test_raise_on_bad(self):
        with pytest.raises(ValueError):
            pf.to_datetime(pf.Series(["junk"]))

    def test_passthrough_datetime(self):
        s = pf.to_datetime(pf.Series(["2021-06-01"]))
        again = pf.to_datetime(s)
        assert again.dt.month.to_list() == [6.0]

    def test_none_becomes_nat(self):
        out = pf.to_datetime(pf.Series(["2020-01-01", None]))
        assert out.isna().to_list() == [False, True]

    def test_plain_list_input(self):
        out = pf.to_datetime(["2020-03-04"])
        assert out.dt.day.to_list() == [4.0]


class TestDateRange:
    def test_start_end(self):
        out = pf.date_range("2020-01-01", end="2020-01-05")
        assert len(out) == 5
        assert out.dt.day.to_list() == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_periods(self):
        out = pf.date_range("2020-01-01", periods=3, freq="W")
        assert out.dt.day.to_list() == [1.0, 8.0, 15.0]

    def test_custom_day_freq(self):
        out = pf.date_range("2020-01-01", periods=3, freq="10D")
        assert out.dt.day.to_list() == [1.0, 11.0, 21.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            pf.date_range("2020-01-01")
        with pytest.raises(ValueError):
            pf.date_range("2020-01-05", end="2020-01-01")
        with pytest.raises(ValueError):
            pf.date_range("2020-01-01", periods=2, freq="H")
