"""Cross-backend parity for the chunk-engine seam.

The seam's contract (ISSUE 10): swapping ``Config.chunk_engine`` from
``"row"`` to ``"columnar"`` may change *byte counters only*.  Every
value a session fetches, and every structural number in the reports
(subtask/shuffle topology, fault events, combine drops, retries), must
be identical across backends — and, within the columnar backend, across
serial, thread and process execution modes.

The scenarios replayed here are exactly the 14 golden scenarios of
``tests/core/golden_harness.scenarios()`` — the tier-1 workloads
fault-free, under seeded chaos, and under a quartered memory budget.
The row engine's bit-identity against the committed goldens is covered
by ``tests/core/test_service_plane.py``; this suite pins the columnar
engine to the row engine.
"""

from __future__ import annotations

import numpy as np
import pytest
from tests.core.golden_harness import WORKLOADS, collect_report, make_session, scenarios

from repro.frame import DataFrame, Series
from repro.frame.dtypes import values_equal

#: report fields that describe graph/shuffle *structure* rather than
#: bytes or simulated time — these must never move across backends.
#: (Byte-derived counters — makespan, transfer/shuffle bytes, peak
#: memory, spill — are legitimately per-engine: a dictionary-encoded
#: chunk is smaller than its row twin.)
TOPOLOGY_FIELDS = (
    "n_subtasks",
    "n_graph_nodes",
    "combine_dropped_rows",
    "retries",
    "recomputed_subtasks",
)


def run_with_engine(spec: dict, engine: str, **extra):
    spec = dict(spec)
    workload, _ = WORKLOADS[spec.pop("workload")]
    with make_session(chunk_engine=engine, **spec, **extra) as session:
        value = workload(session)
        report = collect_report(session)
    return value, report


def assert_values_identical(left, right):
    """Fetched results equal: same type, columns, index, cell values."""
    assert type(left) is type(right)
    if isinstance(left, DataFrame):
        assert left.columns.to_list() == right.columns.to_list()
        assert left.shape == right.shape
        assert values_equal(
            np.asarray(left.index.values), np.asarray(right.index.values)
        )
        for name in left.columns.to_list():
            assert values_equal(left[name].values, right[name].values), name
    elif isinstance(left, Series):
        assert left.name == right.name
        assert values_equal(
            np.asarray(left.index.values), np.asarray(right.index.values)
        )
        assert values_equal(left.values, right.values)
    else:
        assert left == right


class TestColumnarMatchesRow:
    """All 14 golden scenarios, row vs columnar, value for value."""

    @pytest.mark.parametrize("name,spec", scenarios(),
                             ids=[name for name, _ in scenarios()])
    def test_scenario_parity(self, name, spec):
        row_value, row_report = run_with_engine(spec, "row")
        col_value, col_report = run_with_engine(spec, "columnar")

        assert_values_identical(row_value, col_value)

        # Under a quartered memory budget the *byte* sizes of chunks
        # drive admission, spill and pressure splits — columnar chunks
        # are smaller, so the squeeze trajectory may legitimately
        # differ.  Everywhere else structure is pinned.
        if "squeezed" in name:
            return
        assert row_report["fault_events"] == col_report["fault_events"]
        for field in TOPOLOGY_FIELDS:
            assert row_report["sim"][field] == col_report["sim"][field], field
            assert row_report["run"][field] == col_report["run"][field], field
        assert (row_report["run"]["dynamic_yields"]
                == col_report["run"]["dynamic_yields"])


class TestColumnarModeAgreement:
    """Columnar reports are bit-identical serial / thread / process.

    The deterministic accounting walk promises SimReport does not
    depend on which runner executed the kernels; that promise must
    survive the new physical representation (including the procpool
    wire format for dictionary columns).
    """

    @pytest.mark.parametrize("workload", ["groupby_shuffle", "tpch_q5"])
    def test_serial_thread_process_identical(self, workload):
        _, overrides = WORKLOADS[workload]
        spec = {"workload": workload, **overrides}
        serial_value, serial = run_with_engine(
            {**spec, "parallel": False}, "columnar")
        thread_value, thread = run_with_engine(
            {**spec, "parallel": True}, "columnar")
        process_value, process = run_with_engine(
            {**spec, "parallel": True}, "columnar",
            execution_mode="process")

        assert_values_identical(serial_value, thread_value)
        assert_values_identical(serial_value, process_value)
        assert serial["sim"] == thread["sim"] == process["sim"]
        assert serial["fault_events"] == thread["fault_events"]
        assert serial["fault_events"] == process["fault_events"]


class TestStringKeyHashParity:
    """Satellite 6 end-to-end: a *string*-keyed shuffle routes rows to
    the same reducers under both engines, so the fetched groupby result
    — reducer-partition concatenation order included — is identical.
    """

    @staticmethod
    def _string_groupby(session):
        from repro import frame as pf
        from repro.dataframe import from_frame

        rng = np.random.default_rng(23)
        keys = np.array(
            [f"cust-{k:04d}" for k in rng.integers(0, 40, 3_000)],
            dtype=object,
        )
        local = pf.DataFrame({"k": keys, "v": rng.normal(size=3_000)})
        return from_frame(local, session).groupby("k").agg(
            {"v": "sum"}).fetch()

    @pytest.mark.parametrize("combine", [True, False])
    def test_string_groupby_parity(self, combine):
        results = {}
        for engine in ("row", "columnar"):
            with make_session(
                chunk_limit=4_000, tree_reduce_threshold=1,
                chunk_engine=engine, mapper_side_combine=combine,
            ) as session:
                results[engine] = (self._string_groupby(session),
                                   collect_report(session))
        assert_values_identical(results["row"][0], results["columnar"][0])
        for field in TOPOLOGY_FIELDS:
            assert (results["row"][1]["sim"][field]
                    == results["columnar"][1]["sim"][field]), field
