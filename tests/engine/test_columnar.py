"""Unit tests for the columnar chunk engine.

Covers the pieces the end-to-end parity suite can't isolate: the
dictionary encoder's eligibility rules, the hash/range draw-parity
gather trick against the row-space oracles, per-partition dictionary
compaction in ``split``, the procpool wire format, sizeof dispatch and
meta introspection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import frame as pf
from repro.engine import COLUMNAR_ENGINE, ROW_ENGINE
from repro.engine.base import describe_value, engine_of, get_engine
from repro.engine.columnar import (
    ColumnarFrame,
    ColumnarSeries,
    DictColumn,
    encode_column,
)
from repro.engine.partition import (
    assign_hash_partitions,
    assign_range_partitions,
    split_by_assignment,
)
from repro.frame.dtypes import values_equal
from repro.utils import sizeof


def make_string_frame(n=500, n_keys=17, seed=3):
    rng = np.random.default_rng(seed)
    keys = np.array(
        [f"key-{k:03d}" for k in rng.integers(0, n_keys, n)], dtype=object
    )
    return pf.DataFrame({
        "k": keys,
        "v": rng.normal(size=n),
        "n": rng.integers(0, 1000, n),
    })


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_lookup(self):
        assert get_engine("row") is ROW_ENGINE
        assert get_engine("columnar") is COLUMNAR_ENGINE

    def test_unknown_engine_lists_registered(self):
        with pytest.raises(ValueError, match="columnar"):
            get_engine("arrow2")

    def test_engine_of_config(self):
        from repro.config import Config

        cfg = Config()
        assert engine_of(cfg) is ROW_ENGINE
        cfg.chunk_engine = "columnar"
        assert engine_of(cfg) is COLUMNAR_ENGINE


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------

class TestEncoding:
    def test_all_string_column_dict_encodes(self):
        arr = np.array(["b", "a", "b", "c", "a"], dtype=object)
        col = encode_column(arr)
        assert isinstance(col, DictColumn)
        assert col.codes.dtype == np.int32
        assert col.categories.tolist() == ["a", "b", "c"]  # sorted unique
        assert col.decode().tolist() == arr.tolist()

    @pytest.mark.parametrize("raw", [
        np.array(["a", None, "b"], dtype=object),       # None-bearing
        np.array(["a", 1, "b"], dtype=object),          # mixed types
        np.array([1.5, float("nan")], dtype=object),    # non-strings
        np.arange(4, dtype=np.int64),                   # numeric
        np.array([], dtype=object),                     # empty
    ])
    def test_ineligible_columns_stay_raw(self, raw):
        col = encode_column(raw)
        assert col is raw

    def test_frame_roundtrip(self):
        frame = make_string_frame()
        phys = COLUMNAR_ENGINE.persist(frame)
        assert isinstance(phys, ColumnarFrame)
        assert isinstance(phys._data["k"], DictColumn)
        assert isinstance(phys._data["v"], np.ndarray)
        back = COLUMNAR_ENGINE.compute(phys)
        assert back.columns.to_list() == frame.columns.to_list()
        for name in frame.columns.to_list():
            assert values_equal(back[name].values, frame[name].values)
        assert values_equal(
            np.asarray(back.index.values), np.asarray(frame.index.values)
        )

    def test_persist_is_idempotent(self):
        phys = COLUMNAR_ENGINE.persist(make_string_frame())
        assert COLUMNAR_ENGINE.persist(phys) is phys

    def test_series_roundtrip(self):
        series = pf.Series(
            np.array(["x", "y", "x"], dtype=object), name="s"
        )
        phys = COLUMNAR_ENGINE.persist(series)
        assert isinstance(phys, ColumnarSeries)
        assert isinstance(phys._values, DictColumn)
        back = COLUMNAR_ENGINE.compute(phys)
        assert back.name == "s"
        assert values_equal(back.values, series.values)

    def test_row_engine_is_identity(self):
        frame = make_string_frame()
        assert ROW_ENGINE.persist(frame) is frame
        assert ROW_ENGINE.compute(frame) is frame


# ---------------------------------------------------------------------------
# satellite 6: hash/range draw parity against the row-space oracles
# ---------------------------------------------------------------------------

class TestDrawParity:
    @pytest.mark.parametrize("vectorized", [True, False])
    @pytest.mark.parametrize("n_parts", [2, 7])
    def test_hash_partition_matches_row_oracle(self, vectorized, n_parts):
        frame = make_string_frame()
        phys = COLUMNAR_ENGINE.persist(frame)
        got = COLUMNAR_ENGINE.hash_partition(
            phys, "k", n_parts, vectorized=vectorized)
        want = assign_hash_partitions(
            frame["k"].values, n_parts, vectorized)
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_range_partition_matches_row_oracle(self, vectorized):
        frame = make_string_frame()
        boundaries = ["key-004", "key-009", "key-013"]
        phys = COLUMNAR_ENGINE.persist(frame)
        got = COLUMNAR_ENGINE.range_partition(
            phys, "k", boundaries, vectorized=vectorized)
        want = assign_range_partitions(
            frame["k"].values, boundaries, vectorized)
        np.testing.assert_array_equal(got, want)

    def test_numeric_key_delegates_to_row_kernel(self):
        frame = make_string_frame()
        phys = COLUMNAR_ENGINE.persist(frame)
        got = COLUMNAR_ENGINE.hash_partition(phys, "n", 5)
        want = assign_hash_partitions(frame["n"].values, 5, True)
        np.testing.assert_array_equal(got, want)


# ---------------------------------------------------------------------------
# split: value parity + per-partition dictionary compaction
# ---------------------------------------------------------------------------

class TestSplit:
    def test_split_matches_row_split(self):
        frame = make_string_frame()
        n_parts = 4
        assignment = assign_hash_partitions(frame["k"].values, n_parts, True)
        phys = COLUMNAR_ENGINE.persist(frame)
        col_parts = COLUMNAR_ENGINE.split(phys, assignment, n_parts)
        row_parts = split_by_assignment(frame, assignment, n_parts, True)
        for col_part, row_part in zip(col_parts, row_parts):
            back = COLUMNAR_ENGINE.compute(col_part)
            for name in frame.columns.to_list():
                assert values_equal(back[name].values, row_part[name].values)
            assert values_equal(
                np.asarray(back.index.values),
                np.asarray(row_part.index.values),
            )

    def test_split_compacts_partition_dictionaries(self):
        # 40 categories hashed into 8 partitions: each partition sees a
        # strict subset of the dictionary and must carry *only* that
        # subset — the byte win the bench measures depends on it.
        rng = np.random.default_rng(7)
        keys = np.array(
            [f"cust-{k:05d}" for k in rng.integers(0, 40, 2_000)],
            dtype=object,
        )
        frame = pf.DataFrame({"k": keys, "v": rng.normal(size=2_000)})
        phys = COLUMNAR_ENGINE.persist(frame)
        n_parts = 8
        assignment = COLUMNAR_ENGINE.hash_partition(phys, "k", n_parts)
        parts = COLUMNAR_ENGINE.split(phys, assignment, n_parts)
        full_nbytes = phys._data["k"].categories.size
        for part in parts:
            col = part._data["k"]
            assert isinstance(col, DictColumn)
            decoded = col.decode()
            # dictionary is exactly the values present, sorted unique
            assert col.categories.tolist() == sorted(set(decoded.tolist()))
            assert col.categories.size < full_nbytes
            assert col.codes.dtype == np.int32
        # partitions together still cover every input row
        assert sum(len(p) for p in parts) == len(frame)


# ---------------------------------------------------------------------------
# wire format (procpool boundary)
# ---------------------------------------------------------------------------

class TestWire:
    def test_frame_wire_roundtrip(self):
        phys = COLUMNAR_ENGINE.persist(make_string_frame())
        wire = COLUMNAR_ENGINE.to_wire(phys)
        assert isinstance(wire, tuple) and wire[0] == "__columnar_frame__"
        back = COLUMNAR_ENGINE.from_wire(wire)
        assert isinstance(back, ColumnarFrame)
        assert values_equal(
            back._data["k"].decode(), phys._data["k"].decode()
        )
        np.testing.assert_array_equal(back._data["v"], phys._data["v"])

    def test_series_wire_roundtrip(self):
        phys = COLUMNAR_ENGINE.persist(
            pf.Series(np.array(["a", "b", "a"], dtype=object), name="s"))
        back = COLUMNAR_ENGINE.from_wire(COLUMNAR_ENGINE.to_wire(phys))
        assert isinstance(back, ColumnarSeries)
        assert back.name == "s"
        assert values_equal(back._values.decode(), phys._values.decode())

    def test_plain_values_pass_through(self):
        arr = np.arange(8)
        assert COLUMNAR_ENGINE.to_wire(arr) is arr
        assert COLUMNAR_ENGINE.from_wire(arr) is arr
        assert ROW_ENGINE.to_wire(arr) is arr


# ---------------------------------------------------------------------------
# satellite 2: sizeof dispatches through the registry
# ---------------------------------------------------------------------------

class TestSizeof:
    def test_sizeof_uses_nbytes(self):
        phys = COLUMNAR_ENGINE.persist(make_string_frame())
        assert sizeof(phys) == phys.nbytes
        assert sizeof(phys._data["k"]) == phys._data["k"].nbytes

    def test_dictionary_is_smaller_than_rows(self):
        # low-cardinality string column: codes + small dictionary must
        # undercut the per-pointer object charge of the row layout.
        frame = make_string_frame(n=2_000, n_keys=10)
        row_bytes = sizeof(ROW_ENGINE.persist(frame))
        col_bytes = sizeof(COLUMNAR_ENGINE.persist(frame))
        assert col_bytes < row_bytes

    def test_engine_sizeof_method(self):
        phys = COLUMNAR_ENGINE.persist(make_string_frame())
        assert COLUMNAR_ENGINE.sizeof(phys) == phys.nbytes


# ---------------------------------------------------------------------------
# meta introspection
# ---------------------------------------------------------------------------

class TestMeta:
    def test_describe_columnar_frame(self):
        frame = make_string_frame()
        phys = COLUMNAR_ENGINE.persist(frame)
        fields = describe_value(phys, {})
        assert fields["kind"] == "dataframe"
        assert fields["columns"] == ["k", "v", "n"]
        # meta nbytes are *logical*: exactly what the row engine's meta
        # would report, so size-driven tiling is engine-invariant.
        assert fields["nbytes"] == describe_value(frame, {})["nbytes"]
        assert fields["nbytes"] > phys.nbytes  # dictionary win is physical
        assert fields["shape"] == phys.shape

    def test_describe_columnar_series(self):
        phys = COLUMNAR_ENGINE.persist(
            pf.Series(np.array(["a", "b"], dtype=object), name="s"))
        fields = describe_value(phys, {})
        assert fields["kind"] == "series"
        assert fields["shape"] == (2,)

    def test_dtypes_of(self):
        frame = make_string_frame()
        phys = COLUMNAR_ENGINE.persist(frame)
        dtypes = COLUMNAR_ENGINE.dtypes_of(phys)
        assert set(dtypes) == {"k", "v", "n"}
        assert COLUMNAR_ENGINE.columns_of(phys) == ["k", "v", "n"]
