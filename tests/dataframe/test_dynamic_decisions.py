"""Tests of the dynamic-tiling *decisions* (Section IV-C): which reduce
algorithm, which join strategy, whether small chunks get merged, and how
balanced the sampled range partitions come out."""

import numpy as np
import pytest

from repro.config import Config
from repro.core import Session
from repro.dataframe import from_frame
from repro.dataframe.groupby import GroupByAgg, GroupByPartition
from repro.dataframe.merge import MergeChunk, MergePartition
from repro.dataframe.sort import SortPartition
from repro.dataframe.utils import spread_sample
from repro.graph.entity import ChunkData
from repro import frame as pf


def make_session(chunk_limit=8_000, tree_threshold=None, **overrides):
    cfg = Config()
    cfg.chunk_store_limit = chunk_limit
    cfg.tree_reduce_threshold = (
        tree_threshold if tree_threshold is not None else chunk_limit // 2
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return Session(cfg)


def big_frame(n=6_000, n_groups=2_000, seed=0):
    rng = np.random.default_rng(seed)
    return pf.DataFrame({
        "k": rng.integers(0, n_groups, n),
        "v": rng.normal(size=n),
    })


def ops_used(tileable) -> set:
    """Operator class names reachable from a tiled tileable's chunks."""
    seen: set = set()
    names: set = set()
    stack = list(tileable.chunks)
    while stack:
        chunk = stack.pop()
        if chunk.key in seen:
            continue
        seen.add(chunk.key)
        if chunk.op is not None:
            names.add(type(chunk.op).__name__)
            stack.extend(chunk.op.inputs)
    return names


class TestAutoReduceSelection:
    def test_small_aggregate_uses_tree(self):
        session = make_session(tree_threshold=10 ** 9)  # everything "small"
        local = big_frame(n_groups=5)
        out = from_frame(local, session).groupby("k").agg({"v": "sum"})
        out.execute()
        assert "GroupByPartition" not in ops_used(out.data)
        assert len(out.data.chunks) == 1  # tree funnels to one reduce node
        session.close()

    def test_large_aggregate_uses_shuffle(self):
        session = make_session(tree_threshold=1)  # everything "large"
        local = big_frame()
        out = from_frame(local, session).groupby("k").agg({"v": "sum"})
        out.execute()
        assert "GroupByPartition" in ops_used(out.data)
        assert len(out.data.chunks) > 1
        session.close()

    def test_both_paths_agree(self):
        local = big_frame(seed=1)
        results = []
        for threshold in (1, 10 ** 9):
            session = make_session(tree_threshold=threshold)
            out = from_frame(local, session).groupby("k").agg({"v": "sum"})
            results.append(out.fetch().sort_index())
            session.close()
        np.testing.assert_allclose(
            np.asarray(results[0]["v"].values, float),
            np.asarray(results[1]["v"].values, float),
        )

    def test_static_fallback_is_tree(self):
        session = make_session(tree_threshold=1, dynamic_tiling=False)
        local = big_frame(seed=2)
        out = from_frame(local, session).groupby("k").agg({"v": "sum"})
        out.execute()
        assert "GroupByPartition" not in ops_used(out.data)
        session.close()


class TestJoinStrategySelection:
    def test_small_side_broadcast(self):
        session = make_session(chunk_limit=8_000)
        big = big_frame()
        dim = pf.DataFrame({"k": np.arange(2_000, dtype=np.int64),
                            "label": np.arange(2_000, dtype=np.int64)})
        # dim is larger than a chunk? keep it tiny to force broadcast
        dim_small = dim.head(50)
        out = from_frame(big, session).merge(
            from_frame(dim_small, session), on="k"
        )
        out.execute()
        assert "MergePartition" not in ops_used(out.data)
        session.close()

    def test_two_big_sides_shuffle(self):
        session = make_session(chunk_limit=4_000)
        a = big_frame(seed=3)
        b = big_frame(seed=4).rename(columns={"v": "v2"})
        out = from_frame(a, session).merge(from_frame(b, session), on="k")
        out.execute()
        assert "MergePartition" in ops_used(out.data)
        session.close()

    def test_shuffle_reducers_balanced(self):
        """The monotonic-key trap: orderly keys must still spread evenly."""
        session = make_session(chunk_limit=4_000)
        n = 8_000
        a = pf.DataFrame({"k": np.arange(n), "v": np.ones(n)})
        b = pf.DataFrame({"k": np.arange(n), "w": np.ones(n)})
        out = from_frame(a, session).merge(from_frame(b, session), on="k")
        out.execute()
        sizes = [
            session.meta.get(c.key).shape[0]
            for c in out.data.chunks if session.meta.get(c.key)
        ]
        assert len(sizes) > 2
        assert max(sizes) < 0.5 * sum(sizes), f"skewed reducers: {sizes}"
        session.close()


class TestAutoMerge:
    def test_small_chunks_merged_before_shuffle(self):
        with_merge = make_session(tree_threshold=1)
        without = make_session(tree_threshold=1, auto_merge=False)
        local = big_frame(seed=5)
        n_nodes = {}
        for name, session in (("on", with_merge), ("off", without)):
            out = from_frame(local, session).groupby("k").agg({"v": "sum"})
            out.fetch()
            n_nodes[name] = session.executor.report.n_graph_nodes
            session.close()
        assert n_nodes["on"] <= n_nodes["off"]

    def test_results_unchanged(self):
        local = big_frame(seed=6)
        results = []
        for auto in (True, False):
            session = make_session(tree_threshold=1, auto_merge=auto)
            out = from_frame(local, session).groupby("k").agg({"v": "sum"})
            results.append(out.fetch().sort_index())
            session.close()
        np.testing.assert_allclose(
            np.asarray(results[0]["v"].values, float),
            np.asarray(results[1]["v"].values, float),
        )


class TestSpreadSample:
    def _chunks(self, n):
        return [ChunkData("dataframe", (1, 1), (i, 0)) for i in range(n)]

    def test_returns_all_when_few(self):
        chunks = self._chunks(2)
        assert spread_sample(chunks, 5) == chunks

    def test_covers_first_and_last(self):
        chunks = self._chunks(20)
        picked = spread_sample(chunks, 3)
        assert picked[0] is chunks[0]
        assert picked[-1] is chunks[-1]
        assert len(picked) == 3

    def test_spread_not_prefix(self):
        chunks = self._chunks(100)
        picked = spread_sample(chunks, 4)
        indices = [c.index[0] for c in picked]
        assert max(indices) - min(indices) > 50

    def test_no_duplicates(self):
        chunks = self._chunks(7)
        picked = spread_sample(chunks, 5)
        assert len({id(c) for c in picked}) == len(picked)


class TestSortPartitionBalance:
    def test_monotonic_sort_key_balanced(self):
        session = make_session(chunk_limit=4_000)
        n = 8_000
        local = pf.DataFrame({"k": np.arange(n, dtype=np.float64),
                              "v": np.ones(n)})
        out = from_frame(local, session).sort_values("k")
        result = out.fetch()
        assert result["k"].to_list() == sorted(result["k"].to_list())
        sizes = [
            session.meta.get(c.key).shape[0]
            for c in out.data.chunks if session.meta.get(c.key)
        ]
        if len(sizes) > 2:
            assert max(sizes) < 0.5 * sum(sizes)
        session.close()
