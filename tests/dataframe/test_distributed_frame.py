"""Equivalence tests: the distributed DataFrame must match the single-node
``repro.frame`` backend on every supported operation."""

import numpy as np
import pytest

from repro.config import Config
from repro.core import Session
from repro import frame as pf
from repro.dataframe import concat as dconcat, from_frame, read_parquet


@pytest.fixture
def session():
    cfg = Config()
    cfg.chunk_store_limit = 4000  # force several chunks on small data
    cfg.tree_reduce_threshold = 100_000
    s = Session(cfg)
    yield s
    s.close()


@pytest.fixture
def local():
    rng = np.random.default_rng(7)
    n = 500
    return pf.DataFrame({
        "k": rng.integers(0, 11, n),
        "cat": np.array([f"c{v}" for v in rng.integers(0, 4, n)], dtype=object),
        "v": rng.normal(size=n),
        "w": rng.integers(0, 1000, n).astype(np.float64),
    })


@pytest.fixture
def dist(session, local):
    return from_frame(local, session)


def frames_equal(dist_result, local_expected, sort_by=None):
    got = dist_result.fetch() if hasattr(dist_result, "fetch") else dist_result
    if sort_by is not None:
        got = got.sort_values(sort_by).reset_index(drop=True)
        local_expected = local_expected.sort_values(sort_by).reset_index(drop=True)
    assert got.columns.to_list() == local_expected.columns.to_list()
    for col in got.columns.to_list():
        gv, ev = got[col], local_expected[col]
        assert len(gv) == len(ev), f"length mismatch in {col}"
        if gv.dtype.kind == "f" or ev.dtype.kind == "f":
            np.testing.assert_allclose(
                np.asarray(gv.values, dtype=np.float64),
                np.asarray(ev.values, dtype=np.float64),
                err_msg=f"column {col}",
            )
        else:
            assert gv.to_list() == ev.to_list(), f"column {col}"


class TestProjectionArithmetic:
    def test_single_column(self, dist, local):
        out = dist["v"].fetch()
        assert out.equals(local["v"])

    def test_column_list(self, dist, local):
        frames_equal(dist[["v", "k"]], local[["v", "k"]])

    def test_chunked_more_than_once(self, dist):
        dist.execute()
        assert len(dist.data.chunks) > 1  # the fixture really distributes

    def test_arithmetic_chain(self, dist, local):
        out = ((dist["v"] * 2 + 1) / 3).fetch()
        expected = (local["v"] * 2 + 1) / 3
        np.testing.assert_allclose(out.values, expected.values)

    def test_series_series_ops(self, dist, local):
        out = (dist["v"] + dist["w"]).fetch()
        np.testing.assert_allclose(out.values, (local["v"] + local["w"]).values)

    def test_comparisons_and_logic(self, dist, local):
        mask = ((dist["v"] > 0) & (dist["w"] < 500)).fetch()
        expected = (local["v"] > 0) & (local["w"] < 500)
        assert mask.to_list() == expected.to_list()

    def test_setitem_rebinds(self, dist, local):
        dist["z"] = dist["v"] * 10
        expected = local.copy()
        expected["z"] = expected["v"] * 10
        frames_equal(dist, expected)

    def test_assign(self, dist, local):
        out = dist.assign(z=lambda d: d["w"] - 1)
        expected = local.assign(z=lambda d: d["w"] - 1)
        frames_equal(out, expected)

    def test_str_accessor(self, dist, local):
        out = dist["cat"].str.upper().fetch()
        assert out.to_list() == local["cat"].str.upper().to_list()

    def test_map_and_isin(self, dist, local):
        out = dist["k"].isin([1, 2, 3]).fetch()
        assert out.to_list() == local["k"].isin([1, 2, 3]).to_list()

    def test_fillna_astype(self, session):
        local = pf.DataFrame({"a": [1.0, np.nan, 3.0] * 50})
        dist = from_frame(local, session)
        out = dist["a"].fillna(0.0).astype(np.int64).fetch()
        assert out.to_list() == local["a"].fillna(0.0).astype(np.int64).to_list()


class TestFilterIloc:
    def test_filter(self, dist, local):
        frames_equal(dist[dist["v"] > 0.5], local[local["v"] > 0.5])

    def test_filter_then_filter(self, dist, local):
        step1 = dist[dist["v"] > 0]
        out = step1[step1["w"] > 300]
        expected = local[local["v"] > 0]
        expected = expected[expected["w"] > 300]
        frames_equal(out, expected)

    def test_iloc_scalar_row_after_filter(self, dist, local):
        filtered = dist[dist["v"] > 0]
        row = filtered.iloc[10].fetch()
        expected = local[local["v"] > 0].iloc[10]
        assert row.to_list() == expected.to_list()

    def test_iloc_slice(self, dist, local):
        frames_equal(dist.iloc[13:101], local.iloc[13:101])

    def test_head(self, dist, local):
        frames_equal(dist.head(7), local.head(7))

    def test_series_iloc_scalar(self, dist, local):
        assert dist["v"].iloc[42] == local["v"].iloc[42]

    def test_empty_filter_result(self, dist, local):
        out = dist[dist["v"] > 99.0].fetch()
        assert len(out) == 0


class TestGroupBy:
    def test_agg_dict(self, dist, local):
        out = dist.groupby("k").agg({"v": "sum", "w": "max"})
        expected = local.groupby("k").agg({"v": "sum", "w": "max"})
        got = out.fetch().sort_index()
        np.testing.assert_allclose(
            np.asarray(got["v"].values, float),
            np.asarray(expected["v"].values, float))
        np.testing.assert_allclose(
            np.asarray(got["w"].values, float),
            np.asarray(expected["w"].values, float))

    @pytest.mark.parametrize("how", [
        "sum", "mean", "min", "max", "count", "size", "var", "std",
        "nunique", "median", "first", "last",
    ])
    def test_every_aggregation(self, dist, local, how):
        out = dist.groupby("k").agg({"v": how}).fetch().sort_index()
        expected = local.groupby("k").agg({"v": how})
        np.testing.assert_allclose(
            np.asarray(out["v"].values, dtype=np.float64),
            np.asarray(expected["v"].values, dtype=np.float64),
            err_msg=how,
        )

    def test_named_agg(self, dist, local):
        out = dist.groupby("cat").agg(
            total=("v", "sum"), biggest=("w", "max")
        ).fetch().sort_index()
        expected = local.groupby("cat").agg(
            total=("v", "sum"), biggest=("w", "max")
        )
        np.testing.assert_allclose(
            np.asarray(out["total"].values, float),
            np.asarray(expected["total"].values, float))

    def test_as_index_false(self, dist, local):
        out = dist.groupby("k", as_index=False).agg({"v": "sum"})
        expected = local.groupby("k", as_index=False).agg({"v": "sum"})
        frames_equal(out, expected, sort_by="k")

    def test_multi_key(self, dist, local):
        out = dist.groupby(["k", "cat"], as_index=False).agg({"v": "sum"})
        expected = local.groupby(["k", "cat"], as_index=False).agg({"v": "sum"})
        frames_equal(out, expected, sort_by=["k", "cat"])

    def test_column_selection_sum(self, dist, local):
        out = dist.groupby("k")["v"].sum().fetch().sort_index()
        expected = local.groupby("k")["v"].sum()
        np.testing.assert_allclose(
            np.asarray(out.values, float), np.asarray(expected.values, float)
        )

    def test_size(self, dist, local):
        out = dist.groupby("k").size().fetch().sort_index()
        expected = local.groupby("k").size()
        assert np.asarray(out.values, int).tolist() == expected.to_list()

    def test_groupby_after_filter_uses_dynamic_tiling(self, session, local):
        dist = from_frame(local, session)
        filtered = dist[dist["v"] > 0]
        out = filtered.groupby("k").agg({"w": "mean"}).fetch().sort_index()
        lf = local[local["v"] > 0]
        expected = lf.groupby("k").agg({"w": "mean"})
        np.testing.assert_allclose(
            np.asarray(out["w"].values, float),
            np.asarray(expected["w"].values, float))
        assert session.tiler.yield_count >= 1

    def test_shuffle_reduce_path(self, local):
        """Low threshold forces shuffle-reduce; results must not change."""
        cfg = Config()
        cfg.chunk_store_limit = 4000
        cfg.tree_reduce_threshold = 1  # always shuffle
        s = Session(cfg)
        dist = from_frame(local, s)
        out = dist.groupby("k").agg({"v": "sum"}).fetch().sort_index()
        expected = local.groupby("k").agg({"v": "sum"})
        np.testing.assert_allclose(
            np.asarray(out["v"].values, float),
            np.asarray(expected["v"].values, float))
        assert s.last_report.shuffle_bytes > 0
        s.close()


class TestMerge:
    def test_broadcast_inner(self, session, local):
        dist = from_frame(local, session)
        dim = pf.DataFrame({"k": list(range(11)),
                            "label": [f"L{i}" for i in range(11)]})
        out = dist.merge(from_frame(dim, session), on="k")
        expected = local.merge(dim, on="k")
        frames_equal(out, expected, sort_by=["k", "v"])

    def test_left_join_with_missing(self, session, local):
        dist = from_frame(local, session)
        dim = pf.DataFrame({"k": [0, 1, 2], "label": ["a", "b", "c"]})
        out = dist.merge(from_frame(dim, session), on="k", how="left")
        expected = local.merge(dim, on="k", how="left")
        got = out.fetch().sort_values(["k", "v"]).reset_index(drop=True)
        expected = expected.sort_values(["k", "v"]).reset_index(drop=True)
        assert len(got) == len(expected)
        assert got["label"].isna().values.sum() == expected["label"].isna().values.sum()

    def test_shuffle_join_big_big(self, local):
        cfg = Config()
        cfg.chunk_store_limit = 4000
        s = Session(cfg)
        # make both sides "large" by lowering the broadcast threshold
        s.config.chunk_store_limit = 2000
        left = from_frame(local, s)
        right_local = local.rename(columns={"v": "v2", "w": "w2",
                                            "cat": "cat2"})
        right = from_frame(right_local, s)
        out = left.merge(right, on="k")
        expected = local.merge(right_local, on="k")
        assert len(out.fetch()) == len(expected)
        s.close()

    def test_left_on_right_on(self, session, local):
        dist = from_frame(local, session)
        dim = pf.DataFrame({"code": [0, 1, 2, 3], "name": list("abcd")})
        out = dist.merge(from_frame(dim, session), left_on="k",
                         right_on="code")
        expected = local.merge(dim, left_on="k", right_on="code")
        assert len(out.fetch()) == len(expected)

    def test_merge_column_metadata(self, session, local):
        dist = from_frame(local, session)
        dim = pf.DataFrame({"k": [1], "v": [9.0]})
        out = dist.merge(from_frame(dim, session), on="k")
        assert out.columns == ["k", "cat", "v_x", "w", "v_y"]


class TestSortDedupConcat:
    def test_sort_single_key(self, dist, local):
        out = dist.sort_values("v").fetch()
        expected = local.sort_values("v")
        np.testing.assert_allclose(
            np.asarray(out["v"].values, float),
            np.asarray(expected["v"].values, float))

    def test_sort_descending(self, dist, local):
        out = dist.sort_values("w", ascending=False).fetch()
        expected = local.sort_values("w", ascending=False)
        np.testing.assert_allclose(
            np.asarray(out["w"].values, float),
            np.asarray(expected["w"].values, float))

    def test_sort_multi_key(self, dist, local):
        out = dist.sort_values(["k", "v"]).fetch()
        expected = local.sort_values(["k", "v"])
        np.testing.assert_allclose(
            np.asarray(out["v"].values, float),
            np.asarray(expected["v"].values, float))

    def test_nlargest(self, dist, local):
        out = dist.nlargest(5, "v").fetch()
        expected = local.nlargest(5, "v")
        np.testing.assert_allclose(
            np.asarray(out["v"].values, float),
            np.asarray(expected["v"].values, float))

    def test_drop_duplicates(self, session):
        local = pf.DataFrame({"a": [1, 2, 1, 3] * 50, "b": [1, 2, 1, 4] * 50})
        dist = from_frame(local, session)
        out = dist.drop_duplicates().fetch()
        expected = local.drop_duplicates()
        assert len(out) == len(expected)
        frames_equal(out.sort_values(["a", "b"]).reset_index(drop=True),
                     expected.sort_values(["a", "b"]).reset_index(drop=True))

    def test_concat(self, session, local):
        a = from_frame(local.head(100), session)
        b = from_frame(local.tail(100), session)
        out = dconcat([a, b]).fetch()
        assert len(out) == 200

    def test_value_counts(self, dist, local):
        out = dist["cat"].value_counts().fetch()
        expected = local["cat"].value_counts()
        assert np.asarray(out.values, int).tolist() == expected.to_list()


class TestReductions:
    @pytest.mark.parametrize("how", [
        "sum", "mean", "min", "max", "count", "nunique", "var", "std",
        "median", "prod",
    ])
    def test_series_reductions(self, dist, local, how):
        got = float(getattr(dist["v"], how)())
        expected = float(getattr(local["v"], how)())
        assert got == pytest.approx(expected, rel=1e-9), how

    def test_dataframe_sum(self, dist, local):
        out = dist[["v", "w"]].sum().fetch()
        expected = local[["v", "w"]].sum()
        np.testing.assert_allclose(
            np.asarray(out.values, float), np.asarray(expected.values, float)
        )

    def test_any_all(self, session):
        local = pf.DataFrame({"b": [True, False] * 50})
        dist = from_frame(local, session)
        assert bool(dist["b"].any()) is True
        assert bool(dist["b"].all()) is False

    def test_describe(self, dist, local):
        out = dist.describe().fetch()
        expected = local.describe()
        np.testing.assert_allclose(
            np.asarray(out["v"].values, float),
            np.asarray(expected["v"].values, float))

    def test_unique(self, dist, local):
        got = sorted(dist["k"].unique().tolist())
        expected = sorted(set(local["k"].to_list()))
        assert got == expected


class TestIO:
    def test_read_parquet_distributed(self, session, local, tmp_path):
        path = tmp_path / "data.rpq"
        local.to_parquet(path)
        dist = read_parquet(path, session=session)
        assert dist.columns == local.columns.to_list()
        frames_equal(dist, local)

    def test_read_parquet_many_chunks(self, session, local, tmp_path):
        path = tmp_path / "data.rpq"
        local.to_parquet(path)
        dist = read_parquet(path, session=session).execute()
        assert len(dist.data.chunks) > 1

    def test_column_pruning_reaches_datasource(self, session, local, tmp_path):
        path = tmp_path / "data.rpq"
        local.to_parquet(path)
        dist = read_parquet(path, session=session)
        out = dist[["v"]].fetch()
        # the read op only materialized the pruned column set
        read_chunk = dist.data.chunks if dist.data.is_tiled else []
        assert out.columns.to_list() == ["v"]


class TestDeferredEvaluation:
    def test_repr_triggers_execution(self, session, local):
        dist = from_frame(local, session)
        text = repr(dist[["k", "v"]])
        assert "k" in text and "v" in text
        assert session.executor.report.n_subtasks > 0

    def test_len_triggers_execution(self, session, local):
        dist = from_frame(local, session)
        filtered = dist[dist["v"] > 0]
        assert len(filtered) == len(local[local["v"] > 0])

    def test_shape_property(self, dist, local):
        assert dist.shape == local.shape
