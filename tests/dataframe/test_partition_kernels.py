"""Partition-kernel parity and shuffle-data-plane behaviour.

The vectorized shuffle kernels (``repro.dataframe.partition``,
``repro.frame.hashing``) must be bit-identical to the scalar reference
paths they replaced: same hash per key, same range partition per key,
same rows in the same order per output frame. On top of that, shuffles
must stay deterministic across serial/parallel execution, and
mapper-side combine must shrink shuffle bytes without changing results.
"""

import numpy as np
import pytest

from repro.config import Config
from repro.core import Session
from repro import frame as pf
from repro.dataframe import from_frame
from repro.dataframe.partition import (
    assign_hash_partitions,
    assign_range_partitions,
    split_by_assignment,
)
from repro.frame.hashing import HASH_MOD, hash_array, stable_hash


def reference_hashes(values) -> np.ndarray:
    return np.array(
        [stable_hash(v) for v in np.asarray(values).tolist()], dtype=np.int64
    )


class TestHashParity:
    @pytest.mark.parametrize("name,values", [
        ("int64", np.random.default_rng(0).integers(-2**62, 2**62, 500)),
        ("int32", np.arange(-250, 250, dtype=np.int32)),
        ("uint64", np.random.default_rng(1).integers(
            0, 2**64, 500, dtype=np.uint64)),
        ("bool", np.array([True, False] * 50)),
        ("float", np.random.default_rng(2).normal(size=500) * 1e6),
        ("float_edge", np.array([np.nan, np.inf, -np.inf, 0.0, -0.0,
                                 1e300, -1e300, 1.5, -2.75])),
        ("object_str", np.array([f"key-{i % 37}" for i in range(300)],
                                dtype=object)),
        ("object_mixed", np.array(
            [1, 1.0, True, None, "1", 2**70, float("nan")] * 20,
            dtype=object)),
        ("datetime", np.array(["2020-01-01", "NaT", "2021-06-05"],
                              dtype="datetime64[ns]")),
    ])
    def test_vectorized_matches_scalar(self, name, values):
        vec = hash_array(values)
        ref = reference_hashes(values)
        assert vec.dtype == np.int64
        assert (vec == ref).all()
        assert ((vec >= 0) & (vec < HASH_MOD)).all()

    def test_matches_original_formulas(self):
        # pin the published hash definition: int (Knuth multiplicative),
        # float (CPython prime), str (FNV-1a) — a silent change here
        # would reroute every row of every hash shuffle.
        assert stable_hash(5) == 5 * 2654435761 % 2**31
        assert stable_hash(-7) == -7 * 2654435761 % 2**31
        assert stable_hash(2.5) == int(2.5 * 1000003) % 2**31
        h = 2166136261
        for ch in "abc":
            h = (h ^ ord(ch)) * 16777619 % 2**32
        assert stable_hash("abc") == h % 2**31
        assert stable_hash(None) == 0
        assert stable_hash(float("nan")) == 0

    def test_int_float_do_not_collide_via_memo(self):
        # dict keys unify 1 and 1.0; the memoized object path must not.
        values = np.array([1, 1.0, 1, 1.0], dtype=object)
        assert (hash_array(values) == reference_hashes(values)).all()
        assert stable_hash(1) != stable_hash(1.0)

    def test_hash_partition_ids_parity(self):
        keys = np.random.default_rng(3).integers(-10**9, 10**9, 2000)
        for n_parts in (2, 7, 64):
            vec = assign_hash_partitions(keys, n_parts, vectorized=True)
            ref = assign_hash_partitions(keys, n_parts, vectorized=False)
            assert (vec == ref).all()


class TestRangeParity:
    @pytest.mark.parametrize("name,keys,boundaries", [
        ("float", np.random.default_rng(4).normal(size=500),
         sorted(np.random.default_rng(5).normal(size=7).tolist())),
        ("float_nan", np.concatenate(
            [np.random.default_rng(6).normal(size=200), [np.nan] * 5]),
         sorted(np.random.default_rng(7).normal(size=3).tolist())),
        ("int", np.random.default_rng(8).integers(0, 1000, 500),
         sorted({int(v) for v in
                 np.random.default_rng(9).integers(0, 1000, 9)})),
        ("str", np.array([f"u{i % 50:03d}" for i in range(300)],
                         dtype=object),
         ["u010", "u025", "u040"]),
        ("str_none", np.array(["a", None, "z", "m"] * 25, dtype=object),
         ["f", "p"]),
        ("on_boundary", np.array([0, 5, 10, 15, 20]), [5, 15]),
    ])
    def test_vectorized_matches_scalar(self, name, keys, boundaries):
        vec = assign_range_partitions(keys, list(boundaries), vectorized=True)
        ref = assign_range_partitions(keys, list(boundaries), vectorized=False)
        assert (vec == ref).all()

    def test_missing_keys_go_to_last_partition(self):
        keys = np.array([None, "b", None], dtype=object)
        assert assign_range_partitions(keys, ["a", "c"]).tolist() == [2, 1, 2]
        fkeys = np.array([np.nan, 0.5, np.nan])
        assert assign_range_partitions(fkeys, [0.0, 1.0]).tolist() == [2, 1, 2]

    def test_no_boundaries_single_partition(self):
        keys = np.arange(10)
        assert (assign_range_partitions(keys, []) == 0).all()


class TestSplitByAssignment:
    def _frame(self, n=333):
        rng = np.random.default_rng(11)
        return pf.DataFrame({
            "k": rng.integers(0, 40, n),
            "v": rng.normal(size=n),
            "s": np.array([f"x{i % 9}" for i in range(n)], dtype=object),
        })

    def test_matches_boolean_mask_reference(self):
        frame = self._frame()
        assignment = assign_hash_partitions(frame["k"].values, 6)
        fast = split_by_assignment(frame, assignment, 6, vectorized=True)
        slow = split_by_assignment(frame, assignment, 6, vectorized=False)
        assert sum(len(p) for p in fast) == len(frame)
        for a, b in zip(fast, slow):
            assert a.equals(b)

    def test_preserves_original_row_order_within_partition(self):
        frame = self._frame()
        assignment = np.zeros(len(frame), dtype=np.int64)
        (part,) = split_by_assignment(frame, assignment, 1)
        assert part.equals(frame[np.ones(len(frame), dtype=bool)])

    def test_empty_partitions_keep_schema(self):
        frame = self._frame(n=10)
        assignment = np.full(10, 2, dtype=np.int64)
        parts = split_by_assignment(frame, assignment, 4)
        assert [len(p) for p in parts] == [0, 0, 10, 0]
        for part in parts:
            assert part.columns.to_list() == ["k", "v", "s"]


def report_tuple(session: Session):
    report = session.executor.report
    return (
        report.makespan,
        report.total_compute_seconds,
        report.total_transfer_bytes,
        report.total_shuffle_bytes,
        report.combine_dropped_rows,
        report.n_subtasks,
        report.n_graph_nodes,
        dict(report.peak_memory),
        dict(report.band_busy),
    )


def shuffle_config(**overrides) -> Config:
    cfg = Config()
    cfg.chunk_store_limit = 16 * 1024
    cfg.tree_reduce_threshold = 1  # force shuffle-reduce for groupby
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def skewed_frame(n=20_000) -> pf.DataFrame:
    """90% of rows share 3 hot keys — the paper's skew scenario."""
    rng = np.random.default_rng(17)
    hot = rng.choice([1, 2, 3], size=int(n * 0.9))
    cold = rng.integers(4, 500, size=n - len(hot))
    keys = np.concatenate([hot, cold])
    rng.shuffle(keys)
    return pf.DataFrame({
        "k": keys,
        "v": rng.normal(size=n),
        "w": rng.normal(size=n),
    })


class TestShuffleDeterminism:
    def _run(self, cfg: Config):
        with Session(cfg) as session:
            df = from_frame(skewed_frame(), session)
            agg = df.groupby("k", as_index=False).agg({"v": "mean",
                                                       "w": "sum"})
            joined = agg.merge(
                from_frame(skewed_frame(4_000), session), on="k", how="inner"
            )
            return joined.fetch(), report_tuple(session)

    def test_skewed_shuffle_serial_vs_parallel(self):
        serial_cfg = shuffle_config(
            parallel_execution=False,
            parallel_min_subtasks=2, parallel_min_cores=1,
        )
        parallel_cfg = shuffle_config(
            parallel_execution=True,
            parallel_min_subtasks=2, parallel_min_cores=1,
        )
        expected, serial_report = self._run(serial_cfg)
        actual, parallel_report = self._run(parallel_cfg)
        assert actual.equals(expected)
        assert parallel_report == serial_report

    def test_vectorized_and_scalar_paths_identical(self):
        fast, fast_report = self._run(shuffle_config(vectorized_shuffle=True))
        slow, slow_report = self._run(shuffle_config(vectorized_shuffle=False))
        assert fast.equals(slow)
        assert fast_report == slow_report


class TestMapperSideCombine:
    def _run(self, combine: bool):
        rng = np.random.default_rng(5)
        local = pf.DataFrame({
            "k": rng.integers(0, 8, 20_000),  # low cardinality
            "v": rng.normal(size=20_000),
            "w": rng.normal(size=20_000),
        })
        with Session(shuffle_config(mapper_side_combine=combine)) as session:
            df = from_frame(local, session)
            out = df.groupby("k").agg({"v": ["sum", "mean"],
                                       "w": "max"}).fetch()
            report = session.last_report
            return out, report.shuffle_bytes, report.combine_dropped_rows

    def test_combine_shrinks_shuffle_bytes_same_result(self):
        plain, bytes_off, dropped_off = self._run(combine=False)
        combined, bytes_on, dropped_on = self._run(combine=True)
        assert combined.equals(plain)
        assert dropped_off == 0
        assert dropped_on > 0
        assert bytes_on < bytes_off, (
            f"combine did not reduce shuffle bytes: {bytes_on} vs {bytes_off}"
        )

    def test_combine_stat_deterministic_across_modes(self):
        stats = {}
        for parallel in (False, True):
            cfg = shuffle_config(
                parallel_execution=parallel,
                parallel_min_subtasks=2, parallel_min_cores=1,
            )
            rng = np.random.default_rng(5)
            local = pf.DataFrame({
                "k": rng.integers(0, 8, 10_000),
                "v": rng.normal(size=10_000),
            })
            with Session(cfg) as session:
                from_frame(local, session).groupby("k").agg(
                    {"v": "mean"}
                ).fetch()
                stats[parallel] = (
                    session.executor.report.combine_dropped_rows,
                    session.executor.report.total_shuffle_bytes,
                )
        assert stats[False] == stats[True]
        assert stats[False][0] > 0
