"""Tests for distributed cumulative scans and engine failure robustness."""

import numpy as np
import pytest

from repro.config import Config
from repro.core import Session
from repro.dataframe import from_frame
from repro.errors import WorkerOutOfMemory
from repro import frame as pf


@pytest.fixture
def session():
    cfg = Config()
    cfg.chunk_store_limit = 3_000
    s = Session(cfg)
    yield s
    s.close()


@pytest.fixture
def local():
    rng = np.random.default_rng(3)
    return pf.DataFrame({"v": rng.normal(size=600),
                         "w": rng.integers(0, 50, 600).astype(np.float64)})


class TestCumulativeScans:
    def test_cumsum_matches_local(self, session, local):
        dist = from_frame(local, session)
        np.testing.assert_allclose(
            dist["v"].cumsum().fetch().values, local["v"].cumsum().values
        )

    def test_cummax_cummin(self, session, local):
        dist = from_frame(local, session)
        np.testing.assert_allclose(
            dist["v"].cummax().fetch().values, local["v"].cummax().values
        )
        np.testing.assert_allclose(
            dist["v"].cummin().fetch().values, local["v"].cummin().values
        )

    def test_scan_crosses_many_chunks(self, session, local):
        dist = from_frame(local, session)
        out = dist["v"].cumsum()
        out.execute()
        assert len(dist.data.chunks) >= 2  # genuinely distributed
        # last element equals the global sum
        assert out.fetch().values[-1] == pytest.approx(local["v"].sum())

    def test_single_chunk_path(self, session):
        small = pf.DataFrame({"v": [1.0, 2.0, 3.0]})
        dist = from_frame(small, session)
        assert dist["v"].cumsum().fetch().to_list() == [1.0, 3.0, 6.0]

    def test_scan_after_filter(self, session, local):
        dist = from_frame(local, session)
        filtered = dist[dist["w"] > 25.0]
        got = filtered["v"].cumsum().fetch()
        expected = local[local["w"] > 25.0]["v"].cumsum()
        np.testing.assert_allclose(got.values, expected.values)

    def test_quantile(self, session, local):
        dist = from_frame(local, session)
        for q in (0.1, 0.5, 0.9):
            assert float(dist["v"].quantile(q)) == pytest.approx(
                local["v"].quantile(q)
            )

    def test_series_describe(self, session, local):
        out = from_frame(local, session)["v"].describe().fetch()
        assert out.index.to_list() == [
            "count", "mean", "std", "min", "25%", "50%", "75%", "max",
        ]
        assert out.values[0] == 600.0


class TestFailureRobustness:
    def _tight_session(self):
        cfg = Config()
        cfg.chunk_store_limit = 8_000
        cfg.cluster.memory_limit = 40_000
        cfg.spill_to_disk = False
        return Session(cfg)

    def test_oom_propagates_cleanly(self):
        session = self._tight_session()
        big = pf.DataFrame({"v": np.random.default_rng(0).normal(size=50_000)})
        dist = from_frame(big, session)
        with pytest.raises(WorkerOutOfMemory):
            dist.sort_values("v").fetch()
        session.close()

    def test_session_usable_after_oom(self):
        """An OOM must not corrupt the session: later small queries work."""
        session = self._tight_session()
        big = pf.DataFrame({"v": np.random.default_rng(1).normal(size=50_000)})
        with pytest.raises(WorkerOutOfMemory):
            from_frame(big, session).sort_values("v").fetch()
        small = pf.DataFrame({"v": [3.0, 1.0, 2.0]})
        out = from_frame(small, session).sort_values("v").fetch()
        assert out["v"].to_list() == [1.0, 2.0, 3.0]
        session.close()

    def test_memory_accounting_consistent_after_oom(self):
        session = self._tight_session()
        big = pf.DataFrame({"v": np.random.default_rng(2).normal(size=50_000)})
        with pytest.raises(WorkerOutOfMemory):
            from_frame(big, session).sort_values("v").fetch()
        for name, tracker in session.cluster.memory.items():
            assert 0 <= tracker.used <= tracker.limit, name
        session.close()

    def test_spill_rescues_same_workload(self):
        """At a limit where failure is storage *accumulation* (not one
        oversized working set), spilling turns OOM into completion."""

        def run(spill: bool):
            cfg = Config()
            cfg.chunk_store_limit = 8_000
            cfg.cluster.memory_limit = 300_000
            cfg.spill_to_disk = spill
            session = Session(cfg)
            big = pf.DataFrame(
                {"v": np.random.default_rng(3).normal(size=50_000)}
            )
            try:
                out = from_frame(big, session).sort_values("v").fetch()
                return out, session.storage.spilled_bytes()
            finally:
                session.close()

        with pytest.raises(WorkerOutOfMemory):
            run(spill=False)
        out, spilled = run(spill=True)
        assert len(out) == 50_000
        assert spilled > 0

    def test_user_error_does_not_wedge_session(self, session, local):
        dist = from_frame(local, session)
        with pytest.raises(Exception):
            dist.groupby("nonexistent_column").agg({"v": "sum"}).fetch()
        # the session still answers
        assert float(dist["v"].count()) == 600.0
