"""Tests for the baseline-engine framework and the API coverage matrix."""

import numpy as np
import pytest

from repro.baselines import (
    COVERAGE_CASES,
    ENGINE_UNSUPPORTED,
    PROFILES,
    STATUS_API,
    STATUS_OK,
    STATUS_OOM,
    Workload,
    coverage_rate,
    coverage_table,
    make_engine,
    make_fixture,
    supported_cases,
)
from repro.frame import DataFrame as LocalFrame

MiB = 1024 * 1024


def small_tables(n=2_000, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "t": LocalFrame({
            "k": rng.integers(0, 10, n),
            "v": rng.normal(size=n),
        })
    }


def groupby_workload():
    return Workload(
        "gb", lambda t: t["t"].groupby("k").agg({"v": "sum"}),
        frozenset({"groupby_basic"}),
    )


class TestEngineFramework:
    def test_every_profile_runs_simple_workload(self):
        tables = small_tables()
        for name in PROFILES:
            result = make_engine(name).run(
                groupby_workload(), tables,
                n_workers=2, memory_limit=64 * MiB,
                chunk_store_limit=64 * 1024,
            )
            assert result.status == STATUS_OK, (name, result.error)
            assert result.makespan > 0

    def test_engines_produce_identical_results(self):
        tables = small_tables()
        values = {}
        for name in ("xorbits", "dask", "modin", "pandas"):
            result = make_engine(name).run(
                groupby_workload(), tables,
                n_workers=2, memory_limit=64 * MiB,
                chunk_store_limit=64 * 1024,
            )
            values[name] = result.value.sort_index()
        base = values["xorbits"]
        for name, frame in values.items():
            np.testing.assert_allclose(
                np.asarray(frame["v"].values, float),
                np.asarray(base["v"].values, float),
                err_msg=name,
            )

    def test_api_failure_without_execution(self):
        workload = Workload("iloc_thing", lambda t: t["t"].iloc[5],
                            frozenset({"iloc"}))
        result = make_engine("dask").run(workload, small_tables())
        assert result.status == STATUS_API
        assert "iloc" in result.error

    def test_oom_classified(self):
        tables = small_tables(n=30_000)
        result = make_engine("pandas").run(
            groupby_workload(), tables,
            memory_limit=200 * 1024, chunk_store_limit=64 * 1024,
        )
        assert result.status == STATUS_OOM
        assert result.failed

    def test_xorbits_survives_memory_pressure_that_kills_modin(self):
        """The headline mechanism: spill + lifecycle release vs an eager
        engine pinning every user-level intermediate frame."""
        rng = np.random.default_rng(9)
        n = 40_000
        tables = {
            "t": LocalFrame({
                "k": rng.integers(0, 200, n),
                "v": rng.normal(size=n),
                "w": rng.normal(size=n),
            }),
            "dim": LocalFrame({
                "k": np.arange(200, dtype=np.int64),
                "label": rng.normal(size=200),
            }),
        }

        def chained(t):
            # several user-visible intermediates, each ~dataset-sized
            step1 = t["t"].merge(t["dim"], on="k")
            step2 = step1.assign(y=lambda d: d["v"] + d["label"])
            step3 = step2[step2["y"] > -10.0]  # keeps almost everything
            return step3.groupby("k").agg({"y": "sum"})

        workload = Workload("chained", chained, frozenset())
        data_bytes = sum(f.nbytes for f in tables.values())
        limit = int(data_bytes * 0.6)
        kwargs = dict(n_workers=2, memory_limit=limit,
                      chunk_store_limit=data_bytes // 24)
        modin = make_engine("modin").run(workload, tables, **kwargs)
        xorbits = make_engine("xorbits").run(workload, tables, **kwargs)
        assert xorbits.status == STATUS_OK, xorbits.error
        assert modin.failed, "eager retention must exhaust the object store"

    def test_pandas_single_thread_slower_than_xorbits(self):
        tables = small_tables(n=20_000)
        kwargs = dict(n_workers=2, memory_limit=256 * MiB,
                      chunk_store_limit=128 * 1024)
        pandas = make_engine("pandas").run(groupby_workload(), tables, **kwargs)
        xorbits = make_engine("xorbits").run(groupby_workload(), tables, **kwargs)
        assert pandas.status == xorbits.status == STATUS_OK
        assert pandas.makespan > xorbits.makespan

    def test_profile_config_overrides_applied(self):
        cfg = PROFILES["modin"].build_config(4, 64 * MiB, 1 * MiB)
        assert cfg.dynamic_tiling is False
        assert cfg.spill_to_disk is False
        assert cfg.combine_stage is False
        cfg = PROFILES["xorbits"].build_config(4, 64 * MiB, 1 * MiB)
        assert cfg.dynamic_tiling is True

    def test_calibration_scales_bandwidth(self):
        small = PROFILES["xorbits"].build_config(2, 64 * MiB, 1 * MiB,
                                                 data_bytes=1_000_000)
        big = PROFILES["xorbits"].build_config(2, 64 * MiB, 1 * MiB,
                                               data_bytes=100_000_000)
        assert big.cost_model.compute_bandwidth > small.cost_model.compute_bandwidth


class TestCoverageMatrix:
    def test_thirty_cases(self):
        assert len(COVERAGE_CASES) == 30
        names = [c.name for c in COVERAGE_CASES]
        assert len(set(names)) == 30

    def test_rates_match_table5(self):
        rates = coverage_table()
        assert rates["xorbits"] == pytest.approx(29 / 30)
        assert rates["modin"] == pytest.approx(29 / 30)
        assert rates["dask"] == pytest.approx(14 / 30)
        assert rates["pyspark"] == pytest.approx(11 / 30)
        assert rates["pandas"] == 1.0

    def test_unsupported_engines_known(self):
        for engine in ("xorbits", "pandas", "dask", "modin", "pyspark"):
            assert engine in ENGINE_UNSUPPORTED
        with pytest.raises(KeyError):
            coverage_rate("duckdb")

    def test_xorbits_supported_cases_execute(self):
        """The claimed coverage is backed by running code."""
        from repro.config import Config
        from repro.core import Session
        from repro.dataframe import from_frame
        from repro.workloads.tpch.queries import materialize

        cfg = Config()
        cfg.chunk_store_limit = 8_000
        session = Session(cfg)
        fixture = make_fixture()
        handles = {k: from_frame(v, session) for k, v in fixture.items()}
        ran = 0
        for case in supported_cases("xorbits"):
            if case.fn is None:
                continue
            value = materialize(case.fn(handles))
            assert value is not None, case.name
            ran += 1
        session.close()
        assert ran >= 24

    def test_dask_misses_iloc_pyspark_misses_named_agg(self):
        # the two flagship documented gaps from the paper's Listing 1 & VI-E
        assert "iloc" in ENGINE_UNSUPPORTED["dask"]
        assert "groupby_named_agg" in ENGINE_UNSUPPORTED["pyspark"]
        assert "iloc" not in ENGINE_UNSUPPORTED["xorbits"]
        assert "groupby_named_agg" not in ENGINE_UNSUPPORTED["xorbits"]
