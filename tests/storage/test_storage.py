"""Unit tests for the storage service and shuffle manager."""

import numpy as np
import pytest

from repro.cluster import ClusterState
from repro.config import Config
from repro.errors import StorageKeyError, WorkerOutOfMemory
from repro.storage import ShuffleManager, StorageLevel, StorageService


def make_service(memory_limit=10_000, spill=True, n_workers=2):
    cfg = Config()
    cfg.cluster.n_workers = n_workers
    cfg.cluster.memory_limit = memory_limit
    cfg.spill_to_disk = spill
    cluster = ClusterState(cfg)
    return StorageService(cluster, cfg), cluster


class TestPutGet:
    def test_roundtrip_local(self):
        service, _ = make_service()
        value = np.arange(10)
        service.put("k1", value, "worker-0")
        info = service.get("k1", "worker-0")
        assert np.array_equal(info.value, value)
        assert info.transferred_bytes == 0

    def test_remote_get_charges_transfer(self):
        service, _ = make_service()
        service.put("k1", np.arange(100), "worker-0")
        info = service.get("k1", "worker-1")
        assert info.transferred_bytes == info.nbytes > 0
        assert service.transferred_bytes() == info.nbytes

    def test_missing_key(self):
        service, _ = make_service()
        with pytest.raises(StorageKeyError):
            service.get("nope", "worker-0")

    def test_put_charges_memory(self):
        service, cluster = make_service()
        service.put("k1", np.arange(100), "worker-0")
        assert cluster.memory["worker-0"].used > 0

    def test_delete_releases_memory(self):
        service, cluster = make_service()
        service.put("k1", np.arange(100), "worker-0")
        service.delete("k1")
        assert cluster.memory["worker-0"].used == 0
        assert not service.contains("k1")

    def test_overwrite_replaces(self):
        service, cluster = make_service()
        service.put("k1", np.arange(100), "worker-0")
        used1 = cluster.memory["worker-0"].used
        service.put("k1", np.arange(10), "worker-0")
        assert cluster.memory["worker-0"].used < used1

    def test_location_of(self):
        service, _ = make_service()
        service.put("k1", 1, "worker-1")
        assert service.location_of("k1") == ("worker-1", StorageLevel.MEMORY)

    def test_delete_missing_is_noop(self):
        service, _ = make_service()
        service.delete("nope")  # must not raise


class TestSpill:
    def test_spill_moves_lru_to_disk(self):
        service, cluster = make_service(memory_limit=2000)
        a = np.zeros(100)  # 800 bytes
        service.put("old", a, "worker-0")
        service.put("mid", a, "worker-0")
        service.put("new", a, "worker-0")  # must evict "old"
        assert service.location_of("old") == ("worker-0", StorageLevel.DISK)
        assert service.location_of("new") == ("worker-0", StorageLevel.MEMORY)
        assert service.spilled_bytes() >= a.nbytes

    def test_spilled_read_has_penalty(self):
        service, _ = make_service(memory_limit=2000)
        a = np.zeros(100)
        service.put("old", a, "worker-0")
        service.put("mid", a, "worker-0")
        service.put("new", a, "worker-0")
        info = service.get("old", "worker-0")
        assert info.tier_penalty > 1.0
        assert np.array_equal(info.value, a)

    def test_get_refreshes_lru(self):
        service, _ = make_service(memory_limit=2000)
        a = np.zeros(100)
        service.put("old", a, "worker-0")
        service.put("mid", a, "worker-0")
        service.get("old", "worker-0")  # touch → "mid" becomes LRU
        service.put("new", a, "worker-0")
        assert service.location_of("mid")[1] == StorageLevel.DISK
        assert service.location_of("old")[1] == StorageLevel.MEMORY

    def test_peek_does_not_refresh_lru(self):
        """``peek`` is a read-only observation (driver fetch, diagnostics):
        it must not promote its key in the LRU and thereby change which
        chunk the next allocation spills."""
        service, _ = make_service(memory_limit=2000)
        a = np.zeros(100)
        service.put("old", a, "worker-0")
        service.put("mid", a, "worker-0")
        service.peek("old")  # no touch → "old" stays LRU
        service.put("new", a, "worker-0")
        assert service.location_of("old")[1] == StorageLevel.DISK
        assert service.location_of("mid")[1] == StorageLevel.MEMORY

    def test_force_spill_evicts_unpinned_residents(self):
        service, cluster = make_service(memory_limit=10_000)
        a = np.zeros(100)
        service.put("keep", a, "worker-0")
        service.put("drop", a, "worker-0")
        service.pin(["keep"])
        freed = service.force_spill("worker-0")
        assert freed == a.nbytes
        assert service.location_of("keep")[1] == StorageLevel.MEMORY
        assert service.location_of("drop")[1] == StorageLevel.DISK
        assert service.forced_spill_bytes() == freed
        assert cluster.memory["worker-0"].used == a.nbytes
        service.unpin(["keep"])

    def test_force_spill_without_disk_frees_nothing(self):
        service, _ = make_service(memory_limit=10_000, spill=False)
        service.put("a", np.zeros(100), "worker-0")
        assert service.force_spill("worker-0") == 0
        assert service.location_of("a")[1] == StorageLevel.MEMORY

    def test_no_spill_raises_oom(self):
        service, _ = make_service(memory_limit=1000, spill=False)
        service.put("a", np.zeros(100), "worker-0")
        with pytest.raises(WorkerOutOfMemory):
            service.put("b", np.zeros(100), "worker-0")

    def test_oversized_value_oom_even_with_spill(self):
        service, _ = make_service(memory_limit=1000, spill=True)
        with pytest.raises(WorkerOutOfMemory):
            service.put("huge", np.zeros(1000), "worker-0")

    def test_ensure_free(self):
        service, cluster = make_service(memory_limit=2000)
        service.put("a", np.zeros(100), "worker-0")
        service.put("b", np.zeros(100), "worker-0")
        service.ensure_free("worker-0", 1800)
        assert cluster.memory["worker-0"].available >= 1800


class TestRemoteLevel:
    def test_remote_put_get(self):
        service, cluster = make_service()
        service.put("k", np.arange(10), "worker-0", level=StorageLevel.REMOTE)
        assert cluster.memory["worker-0"].used == 0
        info = service.get("k", "worker-1")
        assert info.transferred_bytes > 0
        assert info.tier_penalty > 1.0


class TestShuffle:
    def test_write_and_gather(self):
        service, _ = make_service()
        shuffle = ShuffleManager(service)
        shuffle.write_partition("s1", mapper=0, reducer=0, data=[1, 2], worker="worker-0")
        shuffle.write_partition("s1", mapper=1, reducer=0, data=[3], worker="worker-1")
        shuffle.write_partition("s1", mapper=0, reducer=1, data=[9], worker="worker-0")
        values, transferred, penalty = shuffle.gather("s1", 0, "worker-0")
        assert values == [[1, 2], [3]]
        assert transferred > 0  # mapper 1's partition crossed workers
        assert shuffle.mapper_count("s1") == 2

    def test_gather_local_no_transfer(self):
        service, _ = make_service()
        shuffle = ShuffleManager(service)
        shuffle.write_partition("s1", 0, 0, [1], "worker-0")
        _, transferred, _ = shuffle.gather("s1", 0, "worker-0")
        assert transferred == 0

    def test_cleanup_frees_storage(self):
        service, cluster = make_service()
        shuffle = ShuffleManager(service)
        shuffle.write_partition("s1", 0, 0, np.zeros(100), "worker-0")
        assert cluster.memory["worker-0"].used > 0
        shuffle.cleanup("s1")
        assert cluster.memory["worker-0"].used == 0

    def test_gather_unknown_shuffle(self):
        service, _ = make_service()
        shuffle = ShuffleManager(service)
        values, transferred, _ = shuffle.gather("nope", 0, "worker-0")
        assert values == [] and transferred == 0

    def test_live_bytes(self):
        service, _ = make_service()
        shuffle = ShuffleManager(service)
        shuffle.write_partition("s1", 0, 0, np.zeros(10), "worker-0")
        assert shuffle.live_bytes("s1") > 0
        shuffle.cleanup("s1")
        assert shuffle.live_bytes("s1") == 0


class TestAccountingInvariants:
    """Observation must never change accounting (result-cache satellite).

    The result cache validates hits with ``contains`` and the planner
    observes values with ``peek``/``peek_values``; none of these may
    perturb LRU order (spill victim selection) or pin state, or cache
    lookups would change which chunk spills next.
    """

    def _lru_order(self, service, worker="worker-0"):
        return list(service.worker_unit(worker)._lru)

    def test_peek_does_not_touch_lru(self):
        service, _ = make_service(memory_limit=100_000)
        for key in ("a", "b", "c"):
            service.put(key, np.zeros(100), "worker-0")
        before = self._lru_order(service)
        service.peek("a")
        service.peek_value("a")
        service.peek_values(["a", "b"])
        assert self._lru_order(service) == before == ["a", "b", "c"]

    def test_get_does_touch_lru(self):
        # the control: a charged read must refresh recency, so the two
        # paths are genuinely different in the victim ordering.
        service, _ = make_service(memory_limit=100_000)
        for key in ("a", "b", "c"):
            service.put(key, np.zeros(100), "worker-0")
        service.get("a", "worker-0")
        assert self._lru_order(service) == ["b", "c", "a"]

    def test_peeked_chunk_still_first_spill_victim(self):
        service, _ = make_service(memory_limit=2_000)
        a = np.zeros(100)  # 800 bytes
        service.put("old", a, "worker-0")
        service.put("mid", a, "worker-0")
        service.peek("old")  # observation must not rescue "old"
        service.put("new", a, "worker-0")  # needs a spill
        assert service.location_of("old") == ("worker-0", StorageLevel.DISK)
        assert service.location_of("mid") == ("worker-0", StorageLevel.MEMORY)

    def test_contains_does_not_touch_lru(self):
        service, _ = make_service(memory_limit=100_000)
        for key in ("a", "b", "c"):
            service.put(key, np.zeros(100), "worker-0")
        before = self._lru_order(service)
        assert service.contains("a")
        assert not service.contains("nope")
        assert self._lru_order(service) == before

    def test_force_spill_exempts_pinned(self):
        service, _ = make_service(memory_limit=100_000)
        a = np.zeros(100)
        service.put("pinned", a, "worker-0")
        service.put("loose1", a, "worker-0")
        service.put("loose2", a, "worker-0")
        service.pin(["pinned"])
        moved = service.force_spill("worker-0")
        assert moved == 2 * a.nbytes
        assert service.location_of("pinned") == (
            "worker-0", StorageLevel.MEMORY)
        assert service.location_of("loose1") == (
            "worker-0", StorageLevel.DISK)
        assert service.location_of("loose2") == (
            "worker-0", StorageLevel.DISK)
        service.unpin(["pinned"])
        assert service.force_spill("worker-0") == a.nbytes

    def test_lru_spill_skips_pinned(self):
        service, _ = make_service(memory_limit=2_000)
        a = np.zeros(100)  # 800 bytes
        service.put("old", a, "worker-0")
        service.put("mid", a, "worker-0")
        service.pin(["old"])
        service.put("new", a, "worker-0")  # budget spill must skip "old"
        assert service.location_of("old") == (
            "worker-0", StorageLevel.MEMORY)
        assert service.location_of("mid") == ("worker-0", StorageLevel.DISK)
