"""Regression tests for the reducer-indexed shuffle data plane.

Pins the gather complexity contract: a reducer's gather must touch only
its own M partition entries (reducer indexing), issue its storage reads
as one batched ``get_many`` call, and the executor must keep the shuffle
index in lockstep with chunk lifetime (register on store, forget on
free).
"""

import numpy as np

from repro.cluster import ClusterState
from repro.config import Config
from repro.core import Session
from repro import frame as pf
from repro.dataframe import from_frame
from repro.storage import ShuffleManager, StorageService


def make_service(memory_limit=200_000, n_workers=4):
    cfg = Config()
    cfg.cluster.n_workers = n_workers
    cfg.cluster.memory_limit = memory_limit
    cluster = ClusterState(cfg)
    return StorageService(cluster, cfg), cluster


def populate(shuffle: ShuffleManager, n_mappers: int, n_reducers: int) -> None:
    for mapper in range(n_mappers):
        for reducer in range(n_reducers):
            shuffle.write_partition(
                "s1", mapper, reducer,
                np.full(4, mapper * 100 + reducer),
                f"worker-{mapper % 4}",
            )


class TestGatherCallCounts:
    def test_gather_scans_only_own_mappers(self):
        """One gather touches M entries, not M x R — the tentpole invariant.

        The pre-indexed implementation scanned every (mapper, reducer)
        entry of the dataset per gather; R gathers cost M x R^2 scans.
        With reducer indexing the totals below are exact, so any future
        regression to full scans fails loudly.
        """
        n_mappers, n_reducers = 6, 5
        service, _ = make_service()
        shuffle = ShuffleManager(service)
        populate(shuffle, n_mappers, n_reducers)

        scanned0 = shuffle.gather_scanned
        shuffle.gather("s1", 2, "worker-0")
        assert shuffle.gather_scanned - scanned0 == n_mappers

        for reducer in range(n_reducers):
            if reducer != 2:
                shuffle.gather("s1", reducer, "worker-0")
        assert shuffle.gather_scanned - scanned0 == n_mappers * n_reducers
        assert shuffle.gather_fetches == shuffle.gather_scanned

    def test_gather_reads_are_batched(self, monkeypatch):
        """A gather issues zero per-key ``get`` calls — all via get_many."""
        service, _ = make_service()
        shuffle = ShuffleManager(service)
        populate(shuffle, 4, 3)

        single_gets = []
        original_get = StorageService.get

        def spying_get(self, key, requesting_worker):
            single_gets.append(key)
            return original_get(self, key, requesting_worker)

        batched_calls = []
        original_get_many = StorageService.get_many

        def spying_get_many(self, keys, requesting_worker):
            batched_calls.append(list(keys))
            return original_get_many(self, keys, requesting_worker)

        monkeypatch.setattr(StorageService, "get", spying_get)
        monkeypatch.setattr(StorageService, "get_many", spying_get_many)

        values, _, _ = shuffle.gather("s1", 1, "worker-0")
        assert len(values) == 4
        assert single_gets == []
        assert len(batched_calls) == 1 and len(batched_calls[0]) == 4

    def test_gather_values_stay_mapper_ordered(self):
        service, _ = make_service()
        shuffle = ShuffleManager(service)
        # register out of mapper order; gather must still sort by mapper.
        shuffle.write_partition("s1", 3, 0, "m3", "worker-0")
        shuffle.write_partition("s1", 0, 0, "m0", "worker-1")
        shuffle.write_partition("s1", 1, 0, "m1", "worker-0")
        values, _, _ = shuffle.gather("s1", 0, "worker-0")
        assert values == ["m0", "m1", "m3"]

    def test_get_many_matches_sequential_gets(self):
        service, _ = make_service()
        service.put("a", np.arange(5), "worker-0")
        service.put("b", np.arange(7), "worker-1")
        infos = service.get_many(["a", "b"], "worker-0")
        assert [info.nbytes for info in infos] == [
            service.get("a", "worker-0").nbytes,
            service.get("b", "worker-0").nbytes,
        ]
        # "b" lives on worker-1: batched read still charges the transfer.
        assert infos[1].transferred_bytes > 0


class TestIndexLifecycle:
    def test_forget_key_removes_single_partition(self):
        service, _ = make_service()
        shuffle = ShuffleManager(service)
        populate(shuffle, 3, 2)
        target = "shuffle:s1:1:0"
        shuffle.forget_key(target)
        values, _, _ = shuffle.gather("s1", 0, "worker-0")
        assert len(values) == 2  # mappers 0 and 2 remain
        # reducer 1 untouched
        values, _, _ = shuffle.gather("s1", 1, "worker-0")
        assert len(values) == 3
        shuffle.forget_key(target)  # idempotent
        shuffle.forget_key("never-registered")

    def test_reregistration_replaces_stale_entry(self):
        service, _ = make_service()
        shuffle = ShuffleManager(service)
        service.put("k", np.arange(3), "worker-0")
        shuffle.register_partition("s1", 0, 0, "k", "worker-0", 24)
        shuffle.register_partition("s1", 0, 0, "k", "worker-1", 24)
        values, _, _ = shuffle.gather("s1", 0, "worker-1")
        assert len(values) == 1

    def test_session_registers_and_drains_shuffle_index(self):
        """End to end: a shuffle groupby flows through the session index.

        Map-side partition chunks must register (bytes observed) and be
        forgotten again once the reducers consume them — the index must
        not leak entries across queries.
        """
        cfg = Config()
        cfg.chunk_store_limit = 16 * 1024
        cfg.tree_reduce_threshold = 1  # force the shuffle reduce path
        rng = np.random.default_rng(23)
        local = pf.DataFrame({
            "k": rng.integers(0, 200, 8_000),
            "v": rng.normal(size=8_000),
        })
        with Session(cfg) as session:
            out = from_frame(local, session).groupby("k").agg(
                {"v": "sum"}
            ).fetch()
            assert len(out) == 200
            assert session.shuffle.shuffle_bytes_total() > 0
            assert session.shuffle.gather_scanned_count() == 0  # executor-side
            assert session.shuffle.index_size() == 0, (
                "shuffle partitions leaked in the index after execution"
            )
