"""Chaos suite: deterministic fault injection + lineage-based recovery.

The contract under test (DESIGN.md §Failure model): with seeded faults
at realistic rates every workload completes with results identical to a
fault-free run, serial and parallel execution produce bit-identical
``SimReport``s for the same fault seed, and exhausting the retry budget
raises a typed error instead of hanging.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import frame as pf
from repro.cluster.simulation import SimReport
from repro.config import Config, FaultSpec
from repro.core import Session
from repro.core.dispatch import BandDispatcher, SubtaskComputation
from repro.core.memory_control import verify_memory_invariants
from repro.core.operator import Operator
from repro.core.recovery import FaultInjector, RecoveryManager
from repro.dataframe import from_frame
from repro.errors import (
    DispatcherError,
    RetriesExhausted,
    UnrecoverableChunkLoss,
)
from repro.graph.dag import DAG
from repro.graph.entity import ChunkData
from repro.graph.subtask import Subtask
from repro.tensor import rand
from repro.utils import sizeof
from repro.workloads.tpch import ALL_QUERIES, generate_tables
from repro.workloads.tpch.queries import materialize


def make_session(parallel: bool = False, chunk_limit: int = 8_000,
                 faults: dict | None = None,
                 memory_limit: int | None = None, **overrides) -> Session:
    cfg = Config()
    cfg.chunk_store_limit = chunk_limit
    cfg.parallel_execution = parallel
    # force the dispatcher path even on small graphs / 1-core CI hosts.
    cfg.parallel_min_subtasks = 2
    cfg.parallel_min_cores = 1
    if memory_limit is not None:
        cfg.cluster.memory_limit = memory_limit
    for name, value in (faults or {}).items():
        setattr(cfg.faults, name, value)
    for name, value in overrides.items():
        setattr(cfg, name, value)
    return Session(cfg)


def report_tuple(session: Session):
    report = session.executor.report
    return (
        report.makespan,
        report.total_compute_seconds,
        report.total_transfer_bytes,
        report.total_shuffle_bytes,
        report.n_subtasks,
        report.n_graph_nodes,
        report.retries,
        report.recomputed_subtasks,
        report.recovery_bytes,
        report.backoff_time,
        report.oom_retries,
        report.admission_wait_time,
        report.degraded_subtasks,
        report.pressure_splits,
        report.forced_spill_bytes,
        dict(report.peak_memory),
        dict(report.band_busy),
    )


def event_signature(session: Session):
    """Structural identities of fired injections (session-independent)."""
    return [(e.point, e.stage, e.priority)
            for e in session.cluster.faults.events]


def assert_same_result(actual, expected):
    if isinstance(expected, np.ndarray):
        assert np.asarray(actual).tobytes() == expected.tobytes()
    elif hasattr(expected, "equals"):
        assert actual.equals(expected)
    else:
        assert actual == pytest.approx(expected)


# ---------------------------------------------------------------------------
# tier-1 workloads
# ---------------------------------------------------------------------------

def tensor_fanout(session: Session) -> np.ndarray:
    t = rand(2048, 8, seed=7, session=session)
    return np.asarray(((t * 2.0 + 1.0).sum()).fetch())


def groupby_shuffle(session: Session):
    rng = np.random.default_rng(11)
    local = pf.DataFrame({
        "k": rng.integers(0, 200, 4_000),
        "v": rng.normal(size=4_000),
    })
    return from_frame(local, session).groupby("k").agg({"v": "sum"}).fetch()


def merge_frames(session: Session):
    rng = np.random.default_rng(5)
    left = pf.DataFrame({
        "k": rng.integers(0, 50, 1_500),
        "a": rng.normal(size=1_500),
    })
    right = pf.DataFrame({"k": np.arange(50), "b": rng.normal(size=50)})
    return from_frame(left, session).merge(
        from_frame(right, session), on="k"
    ).fetch()


def sort_frame(session: Session):
    rng = np.random.default_rng(9)
    local = pf.DataFrame({
        "x": rng.normal(size=3_000),
        "y": np.arange(3_000, dtype=float),
    })
    return from_frame(local, session).sort_values("x").fetch()


def tpch_q5(session: Session):
    tables = generate_tables(sf=1.0, seed=7)
    handles = {
        name: from_frame(frame, session) for name, frame in tables.items()
    }
    return materialize(ALL_QUERIES["q5"](handles))


#: name -> (workload, config overrides). The groupby forces the
#: shuffle-reduce path so partition recovery is actually exercised.
WORKLOADS = {
    "tensor_fanout": (tensor_fanout, {}),
    "groupby_shuffle": (groupby_shuffle,
                        {"chunk_limit": 4_000, "tree_reduce_threshold": 1}),
    "merge": (merge_frames, {"chunk_limit": 4_000}),
    "sort": (sort_frame, {"chunk_limit": 4_000}),
    "tpch_q5": (tpch_q5, {"chunk_limit": 64 * 1024}),
}

#: the chaos dial of the acceptance criteria: every rate <= 5%.
CHAOS = {
    "seed": 20240806,
    "compute_fault_rate": 0.05,
    "chunk_loss_rate": 0.03,
    "worker_kill_rate": 0.01,
    "memory_squeeze_rate": 0.05,
}


# ---------------------------------------------------------------------------
# injector + lineage planning units
# ---------------------------------------------------------------------------

def _stub_subtask(outputs, inputs=(), stage=0, priority=0) -> Subtask:
    subtask = Subtask([ChunkData("tensor", (1,), (0,))])
    subtask.output_keys = list(outputs)
    subtask.input_keys = list(inputs)
    subtask.stage_index = stage
    subtask.priority = priority
    subtask.band = "worker-0/band-0"
    return subtask


class TestFaultInjector:
    def test_draws_deterministic_per_seed(self):
        a = FaultInjector(FaultSpec(seed=42))
        b = FaultInjector(FaultSpec(seed=42))
        c = FaultInjector(FaultSpec(seed=43))
        series_a = [a._draw("compute", 0, i, 0) for i in range(200)]
        series_b = [b._draw("compute", 0, i, 0) for i in range(200)]
        series_c = [c._draw("compute", 0, i, 0) for i in range(200)]
        assert series_a == series_b
        assert series_a != series_c
        assert all(0.0 <= x < 1.0 for x in series_a)
        # roughly uniform: a 5% rate fires on a few percent of draws
        assert 0 < sum(x < 0.05 for x in series_a) < 30

    def test_rates_zero_and_one(self):
        never = FaultInjector(FaultSpec(seed=1))
        always = FaultInjector(FaultSpec(
            seed=1, compute_fault_rate=1.0, chunk_loss_rate=1.0,
            worker_kill_rate=1.0,
        ))
        subtask = _stub_subtask(["o"])
        assert not never.enabled
        assert not never.fail_compute(subtask, 0)
        assert always.fail_compute(subtask, 0)
        assert always.drop_chunk(subtask, 0, "o")
        assert always.kill_worker_after(subtask)
        assert [e.point for e in always.events] == [
            "compute", "chunk_loss", "worker_kill",
        ]

    def test_scripted_point_fires_exactly_once(self):
        injector = FaultInjector(FaultSpec(seed=0))
        injector.script_compute_fault(2, 5, attempt=1)
        assert injector.enabled
        subtask = _stub_subtask(["o"], stage=2, priority=5)
        assert not injector.fail_compute(subtask, 0)
        assert injector.fail_compute(subtask, 1)
        assert not injector.fail_compute(subtask, 1)


class TestRecoveryPlan:
    def _lineage(self):
        # source -> mid -> out, plus an unrelated producer
        source = _stub_subtask(["a"], stage=0, priority=0)
        mid = _stub_subtask(["b"], inputs=["a"], stage=0, priority=1)
        out = _stub_subtask(["c"], inputs=["b"], stage=1, priority=0)
        other = _stub_subtask(["z"], stage=0, priority=2)
        manager = RecoveryManager()
        for subtask in (source, mid, out, other):
            manager.record(subtask)
        return manager, source, mid, out

    def test_minimal_plan_stops_at_resident_inputs(self):
        manager, _, mid, _ = self._lineage()
        plan = manager.plan(["b"], contains=lambda k: k == "a")
        assert plan == [mid]

    def test_transitive_closure_over_freed_inputs(self):
        manager, source, mid, out = self._lineage()
        plan = manager.plan(["c"], contains=lambda k: False)
        assert plan == [source, mid, out]  # valid execution order

    def test_unknown_key_is_unrecoverable(self):
        manager, *_ = self._lineage()
        with pytest.raises(UnrecoverableChunkLoss):
            manager.plan(["ghost"], contains=lambda k: False)


# ---------------------------------------------------------------------------
# scripted end-to-end injections
# ---------------------------------------------------------------------------

class TestScriptedInjection:
    def test_compute_fault_is_retried_with_backoff(self):
        with make_session() as clean:
            expected = tensor_fanout(clean)
        with make_session() as chaotic:
            chaotic.cluster.faults.script_compute_fault(0, 0)
            actual = tensor_fanout(chaotic)
            report = chaotic.executor.report
            assert report.retries == 1
            assert report.backoff_time == pytest.approx(
                chaotic.config.faults.backoff_base
            )
            assert event_signature(chaotic) == [("compute", 0, 0)]
            assert chaotic.last_report.retries == 1
        assert_same_result(actual, expected)

    def test_chunk_loss_triggers_lineage_recompute(self):
        with make_session() as clean:
            expected = tensor_fanout(clean)
        with make_session() as chaotic:
            chaotic.cluster.faults.script_chunk_loss(0, 0)
            actual = tensor_fanout(chaotic)
            report = chaotic.executor.report
            assert report.recomputed_subtasks >= 1
            assert report.recovery_bytes > 0
            assert ("chunk_loss", 0, 0) in event_signature(chaotic)
        assert_same_result(actual, expected)

    def test_worker_kill_recovers_and_charges_restart(self):
        with make_session() as clean:
            expected = tensor_fanout(clean)
            clean_makespan = clean.cluster.clock.makespan
        with make_session() as chaotic:
            chaotic.cluster.faults.script_worker_kill(0, 0)
            actual = tensor_fanout(chaotic)
            report = chaotic.executor.report
            assert report.recomputed_subtasks >= 1
            assert ("worker_kill", 0, 0) in event_signature(chaotic)
            # the killed worker's bands waited out the restart
            assert chaotic.cluster.clock.makespan > clean_makespan
        assert_same_result(actual, expected)

    @pytest.mark.parametrize("parallel", [False, True])
    def test_retries_exhausted_raises_typed_error(self, parallel):
        faults = {"compute_fault_rate": 1.0}
        with make_session(parallel=parallel, faults=faults) as session:
            with pytest.raises(RetriesExhausted) as excinfo:
                tensor_fanout(session)
            assert excinfo.value.attempts == (
                session.config.faults.max_retries + 1
            )

    def test_total_chunk_loss_still_converges(self):
        """Every output dropped post-store: recovery must terminate."""
        with make_session() as clean:
            expected = tensor_fanout(clean)
        faults = {"chunk_loss_rate": 1.0}
        with make_session(faults=faults) as chaotic:
            actual = tensor_fanout(chaotic)
            report = chaotic.executor.report
            assert report.retries > 0
            assert report.recomputed_subtasks > 0
        assert_same_result(actual, expected)


# ---------------------------------------------------------------------------
# randomized chaos across the tier-1 workloads
# ---------------------------------------------------------------------------

class TestChaosMatrix:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_chaotic_run_matches_fault_free(self, name):
        workload, overrides = WORKLOADS[name]
        with make_session(**overrides) as clean:
            expected = workload(clean)
        with make_session(faults=CHAOS, **overrides) as chaotic:
            actual = workload(chaotic)
            events = event_signature(chaotic)
            verify_memory_invariants(chaotic)
        assert_same_result(actual, expected)
        # rates this high over graphs this wide must actually fire
        assert events

    @pytest.mark.parametrize("name", ["tensor_fanout", "groupby_shuffle"])
    def test_serial_parallel_reports_bit_identical_under_chaos(self, name):
        workload, overrides = WORKLOADS[name]
        results, reports, signatures = {}, {}, {}
        for mode in (False, True):
            with make_session(parallel=mode, faults=CHAOS,
                              **overrides) as session:
                results[mode] = workload(session)
                reports[mode] = report_tuple(session)
                signatures[mode] = event_signature(session)
                verify_memory_invariants(session)
        assert signatures[True] == signatures[False]
        assert reports[True] == reports[False]
        assert_same_result(results[True], results[False])

    @pytest.mark.parametrize("name", ["tensor_fanout", "groupby_shuffle"])
    def test_memory_chaos_bit_identical_under_pressure(self, name):
        """Memory squeezes + chunk loss under a budget tight enough that
        admission backpressure and the OOM ladder actually fire: results
        still match the fault-free run and both modes stay bit-identical.
        """
        workload, overrides = WORKLOADS[name]
        chaos = dict(CHAOS)
        chaos["memory_squeeze_rate"] = 0.2
        with make_session(**overrides) as clean:
            expected = workload(clean)
        results, reports, pressured = {}, {}, {}
        for mode in (False, True):
            with make_session(parallel=mode, faults=chaos,
                              memory_limit=192 * 1024,
                              **overrides) as session:
                results[mode] = workload(session)
                reports[mode] = report_tuple(session)
                report = session.executor.report
                pressured[mode] = (
                    report.admission_wait_time > 0.0
                    or report.oom_retries > 0
                    or report.forced_spill_bytes > 0
                )
                assert any(e.point == "mem_squeeze"
                           for e in session.cluster.faults.events)
                verify_memory_invariants(session)
        assert reports[True] == reports[False]
        assert pressured[True] and pressured[False]
        assert_same_result(results[True], results[False])
        assert_same_result(results[True], expected)


# ---------------------------------------------------------------------------
# shuffle register/forget lifecycle under recomputation
# ---------------------------------------------------------------------------

class TestShuffleRecovery:
    OVERRIDES = {"chunk_limit": 4_000, "tree_reduce_threshold": 1}

    def test_lost_partition_reregisters_on_mapper_rerun(self):
        """Dropping a stored mapper partition leaves a stale shuffle
        index entry; the mapper re-run must *replace* it (bumping the
        re-registration counter), not KeyError or double-register."""
        with make_session(**self.OVERRIDES) as clean:
            expected = groupby_shuffle(clean)
        with make_session(**self.OVERRIDES) as chaotic:
            fired: list[str] = []

            def drop_one_partition(subtask, key):
                if fired:
                    return False
                is_mapper = any(
                    c.op is not None and c.op.is_shuffle_map
                    for c in subtask.chunks
                )
                if is_mapper:
                    fired.append(key)
                    return True
                return False

            chaotic.cluster.faults.on_store(drop_one_partition)
            actual = groupby_shuffle(chaotic)
            assert fired, "workload scheduled no shuffle mappers"
            assert chaotic.shuffle.reregistered_count() >= 1
            assert chaotic.executor.report.recomputed_subtasks >= 1
        assert_same_result(actual, expected)

    def test_reducer_loss_recomputes_refcount_freed_mappers(self):
        """Losing a reducer output after its partitions were freed by
        refcounting must pull the mappers back in via lineage."""
        with make_session(**self.OVERRIDES) as dry:
            expected = groupby_shuffle(dry)
            producers = {
                id(s): s
                for s in dry.executor.recovery._producer_of.values()
            }.values()
            mapper_outputs = {
                key for s in producers
                if any(c.op is not None and c.op.is_shuffle_map
                       for c in s.chunks)
                for key in s.output_keys
            }
            reducers = [
                s for s in producers
                if set(s.input_keys) & mapper_outputs
            ]
            assert mapper_outputs and reducers
            target = min(reducers,
                         key=lambda s: (s.stage_index, s.priority))
            ident = (target.stage_index, target.priority)
        # structural identities are stable across sessions: script the
        # same reducer's output loss in a brand-new session.
        with make_session(**self.OVERRIDES) as chaotic:
            chaotic.cluster.faults.script_chunk_loss(*ident)
            actual = groupby_shuffle(chaotic)
            report = chaotic.executor.report
            assert ("chunk_loss",) + ident in event_signature(chaotic)
            # the reducer plus at least one mapper were re-executed
            assert report.recomputed_subtasks >= 2
        assert_same_result(actual, expected)

    def test_reregistration_counter_unit(self):
        with make_session(**self.OVERRIDES) as session:
            shuffle = session.shuffle
            session.storage.put("p0", np.arange(4), "worker-0")
            shuffle.register_partition("s1", 0, 0, "p0", "worker-0", 32)
            assert shuffle.reregistered_count() == 0
            shuffle.register_partition("s1", 0, 0, "p0", "worker-0", 32)
            assert shuffle.reregistered_count() == 1
            values, _, _ = shuffle.gather("s1", 0, "worker-0")
            assert len(values) == 1  # replaced, not duplicated


# ---------------------------------------------------------------------------
# dispatcher deadlock fixes
# ---------------------------------------------------------------------------

def _tiny_order(n: int = 2):
    graph: DAG = DAG()
    order = []
    for i in range(n):
        subtask = Subtask([ChunkData("tensor", (1,), (i,))])
        subtask.band = f"worker-0/band-{i % 2}"
        subtask.priority = i
        graph.add_node(subtask)
        order.append(subtask)
    return graph, order


def _ok_compute(subtask, inputs):
    return SubtaskComputation({}, {}, {})


class TestDispatcherDeadlockFixes:
    def test_dead_pool_poisons_waiters_instead_of_hanging(self):
        dead_pool = ThreadPoolExecutor(max_workers=1)
        dead_pool.shutdown()
        graph, order = _tiny_order()
        dispatcher = BandDispatcher(
            graph, order, _ok_compute, fetch=lambda key: None,
            pool=dead_pool,
        )
        dispatcher.start()  # submit fails -> poisoned
        with pytest.raises(DispatcherError):
            dispatcher.wait_for(order[0].key)
        dispatcher.shutdown()  # must return promptly, not hang

    def test_stalled_graph_raises_instead_of_hanging(self):
        dispatcher = BandDispatcher(
            DAG(), [], _ok_compute, fetch=lambda key: None,
        )
        dispatcher.start()
        with pytest.raises(DispatcherError):
            dispatcher.wait_for("never-scheduled")
        dispatcher.shutdown()

    def test_stopped_dispatcher_rejects_waiters(self):
        graph, order = _tiny_order()
        dispatcher = BandDispatcher(
            graph, order, _ok_compute, fetch=lambda key: None,
        )
        dispatcher.start()
        dispatcher.wait_for(order[0].key)
        dispatcher.shutdown()
        with pytest.raises(DispatcherError):
            dispatcher.wait_for("anything-after-stop")


# ---------------------------------------------------------------------------
# executor working-set accounting (env double-count fix)
# ---------------------------------------------------------------------------

class _ConstOp(Operator):
    """Produces a fixed-size array, ignoring its inputs."""

    def __init__(self, n: int = 0, **params):
        super().__init__(n=n, **params)
        self._n = n

    def execute(self, ctx):
        return np.ones(self._n)


class TestEnvAccounting:
    def test_key_overwrite_not_double_counted(self):
        """Two ops writing the same env key must not inflate env_peak."""
        n = 25_000
        with make_session(operator_fusion=False) as session:
            op1 = _ConstOp(n)
            c1 = ChunkData("tensor", (n,), (0,), op=op1, key="dup-chunk")
            op1.inputs, op1.outputs = [], [c1]
            op2 = _ConstOp(n)
            c2 = ChunkData("tensor", (n,), (0,), op=op2, key="dup-chunk")
            op2.inputs, op2.outputs = [c1], [c2]
            subtask = Subtask([c1, c2])
            subtask.output_keys = ["dup-chunk"]
            band = session.cluster.bands[0]
            subtask.band = band.name

            recorded: list[int] = []
            tracker = session.cluster.memory[band.worker]
            original = tracker.note_transient
            tracker.note_transient = (
                lambda nbytes: (recorded.append(nbytes), original(nbytes))[1]
            )
            session.executor._run_subtask(
                subtask, None, {}, 0.0, set(), {}, SimReport(),
            )
            value_bytes = sizeof(np.ones(n))
            # one resident value, not two: the double-count bug reported
            # ~2x value_bytes here.
            assert recorded
            assert recorded[0] <= int(
                session.config.peak_factor * value_bytes * 1.25
            )
