"""Unit tests for the Operator base class and tiling protocol helpers."""

import pytest

from repro.core.operator import (
    DataSourceOp,
    ExecContext,
    FetchOp,
    Operator,
    TileContext,
    run_tile,
)
from repro.config import Config
from repro.core.meta import MetaService
from repro.graph.entity import ChunkData, TileableData


class AddOp(Operator):
    def execute(self, ctx):
        return sum(ctx.get(c.key) for c in self.inputs)


class TestGraphConstruction:
    def test_new_tileable_wires_inputs_outputs(self):
        source = TileableData("tensor", (4,))
        op = AddOp(alpha=2)
        out = op.new_tileable([source], "tensor", (4,))
        assert op.inputs == [source]
        assert op.outputs == [out]
        assert out.op is op
        assert out.inputs == [source]
        assert op.params["alpha"] == 2

    def test_new_tileables_multi_output(self):
        op = AddOp()
        outs = op.new_tileables([], [
            {"kind": "tensor", "shape": (2, 2)},
            {"kind": "tensor", "shape": (2,)},
        ])
        assert len(outs) == 2
        assert all(o.op is op for o in outs)

    def test_new_chunk(self):
        dep = ChunkData("tensor", (3,), (0,))
        op = AddOp()
        out = op.new_chunk([dep], "tensor", (3,), (0,))
        assert out.index == (0,)
        assert out.inputs == [dep]

    def test_copy_with_merges_params(self):
        op = AddOp(a=1, b=2)
        op.stage = "map"
        clone = op.copy_with(b=3)
        assert clone.params == {"a": 1, "b": 3}
        assert clone.stage == "map"
        assert clone is not op

    def test_display_name_includes_stage(self):
        op = AddOp()
        assert op.display_name == "AddOp"
        op.stage = "combine"
        assert op.display_name == "AddOp::combine"


class TestTilingProtocol:
    def test_run_tile_wraps_plain_function(self):
        class PlainTile(Operator):
            def tile(self, ctx):
                return [(["chunks"], ((1,),))]

        gen = run_tile(PlainTile(), None)
        with pytest.raises(StopIteration) as stop:
            next(gen)
        assert stop.value.value == [(["chunks"], ((1,),))]

    def test_run_tile_passes_through_generators(self):
        class GenTile(Operator):
            def tile(self, ctx):
                yield ["partial"]
                return [([], ((),))]

        gen = run_tile(GenTile(), None)
        assert next(gen) == ["partial"]

    def test_default_tile_and_execute_raise(self):
        with pytest.raises(NotImplementedError):
            Operator().tile(None)
        with pytest.raises(NotImplementedError):
            Operator().execute(None)

    def test_default_column_requirements_conservative(self):
        op = AddOp()
        op.inputs = [TileableData("dataframe", (1, 1)),
                     TileableData("dataframe", (1, 1))]
        assert op.input_column_requirements(["a"]) == [None, None]


class TestContexts:
    def test_exec_context(self):
        ctx = ExecContext({"k": 41}, Config())
        assert ctx.get("k") == 41
        assert ctx.has("k") and not ctx.has("other")
        ctx.annotate("out", rows=10)
        ctx.annotate("out", bytes=20)
        assert ctx.extra_meta == {"out": {"rows": 10, "bytes": 20}}

    def test_tile_context_meta_helpers(self):
        meta = MetaService()
        ctx = TileContext(Config(), meta)
        chunk = ChunkData("tensor", (5,), (0,))
        assert ctx.chunk_meta(chunk) is None
        assert ctx.chunk_nbytes(chunk, default=7) == 7
        assert ctx.chunk_len(chunk) == 5
        meta.set_from_value(chunk.key, __import__("numpy").zeros(3))
        assert ctx.chunk_nbytes(chunk) == 24
        assert ctx.chunk_len(chunk) == 3

    def test_tile_context_without_storage(self):
        ctx = TileContext(Config(), MetaService())
        assert not ctx.has_value("any")
        with pytest.raises(RuntimeError):
            ctx.peek("any")

    def test_fetch_op(self):
        op = FetchOp(source_key="src")
        ctx = ExecContext({"src": 99}, Config())
        assert op.execute(ctx) == 99

    def test_data_source_marker(self):
        assert issubclass(DataSourceOp, Operator)
