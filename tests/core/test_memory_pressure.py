"""Memory-pressure suite: admission ledger, OOM ladder, re-tiling.

The contract under test (DESIGN.md §Memory pressure): with admission
control and the OOM recovery ladder on, workloads complete — with
results identical to an unconstrained run — at worker budgets where the
no-backpressure engine dies; backpressure is charged to virtual time
(``admission_wait_time``) deterministically in both execution modes; and
a budget smaller than any two concurrent working sets serializes through
the deadlock guard instead of hanging.
"""

import numpy as np
import pytest

from repro import frame as pf
from repro.config import Config
from repro.core import Session
from repro.core.memory_control import (
    FootprintEstimator,
    MemoryAdmission,
    verify_memory_invariants,
    worker_of_band,
)
from repro.core.meta import ChunkMeta, MetaService
from repro.core.operator import Operator
from repro.core.scheduler import Scheduler
from repro.cluster import ClusterState
from repro.dataframe import from_frame
from repro.errors import WorkerOutOfMemory
from repro.graph.dag import DAG
from repro.graph.entity import ChunkData
from repro.graph.subtask import Subtask
from repro.storage import StorageService
from repro.tensor import rand
from repro.tensor.core import tensor_from_numpy
from repro.workloads.tpch import ALL_QUERIES, generate_tables
from repro.workloads.tpch.queries import materialize


def make_session(parallel: bool = False, chunk_limit: int = 8_000,
                 memory_limit: int | None = None, **overrides) -> Session:
    cfg = Config()
    cfg.chunk_store_limit = chunk_limit
    cfg.parallel_execution = parallel
    cfg.parallel_min_subtasks = 2
    cfg.parallel_min_cores = 1
    if memory_limit is not None:
        cfg.cluster.memory_limit = memory_limit
    for name, value in overrides.items():
        setattr(cfg, name, value)
    return Session(cfg)


def assert_same_result(actual, expected):
    if isinstance(expected, np.ndarray):
        assert np.asarray(actual).tobytes() == expected.tobytes()
    elif hasattr(expected, "equals"):
        assert actual.equals(expected)
    else:
        assert actual == pytest.approx(expected)


def tensor_fanout(session: Session) -> np.ndarray:
    t = rand(2048, 8, seed=7, session=session)
    return np.asarray(((t * 2.0 + 1.0).sum()).fetch())


def tensor_fanout_exact(session: Session) -> np.ndarray:
    """Chunking-independent fanout: driver-held integer data, exact sum.

    ``rand`` seeds its values per chunk, so memory-aware re-tiling (which
    changes the chunk layout) legitimately changes what it samples; this
    variant keeps the answer invariant under any re-tiling.
    """
    data = np.arange(2048 * 8, dtype=np.int64).reshape(2048, 8)
    t = tensor_from_numpy(data, session=session)
    return np.asarray(((t * 2 + 1).sum()).fetch())


def groupby_shuffle(session: Session):
    rng = np.random.default_rng(11)
    local = pf.DataFrame({
        "k": rng.integers(0, 200, 4_000),
        "v": rng.normal(size=4_000),
    })
    return from_frame(local, session).groupby("k").agg({"v": "sum"}).fetch()


def tpch_q5(session: Session):
    tables = generate_tables(sf=1.0, seed=7)
    handles = {
        name: from_frame(frame, session) for name, frame in tables.items()
    }
    return materialize(ALL_QUERIES["q5"](handles))


# ---------------------------------------------------------------------------
# units: estimator, ledger, scheduler load accounting
# ---------------------------------------------------------------------------

class _SizedOp(Operator):
    def __init__(self, n: int = 0, **params):
        super().__init__(n=n, **params)
        self._n = n

    def execute(self, ctx):
        return np.ones(self._n)


def _stub_subtask(outputs, inputs=(), stage=0, priority=0,
                  band="worker-0/band-0", op=None) -> Subtask:
    chunk = ChunkData("tensor", (1,), (0,), op=op)
    if op is not None:
        chunk.key = outputs[0]
    subtask = Subtask([chunk])
    subtask.output_keys = list(outputs)
    subtask.input_keys = list(inputs)
    subtask.stage_index = stage
    subtask.priority = priority
    subtask.band = band
    return subtask


class TestWorkerOfBand:
    def test_splits_band_names(self):
        assert worker_of_band("worker-3/band-1") == "worker-3"
        assert worker_of_band(None) == ""


class TestFootprintEstimator:
    def _estimator(self, chunk_limit=1_000):
        cfg = Config()
        cfg.chunk_store_limit = chunk_limit
        cluster = ClusterState(cfg)
        storage = StorageService(cluster, cfg)
        return FootprintEstimator(cfg, MetaService(), storage), cfg

    def test_unknown_everything_presumes_full_chunks(self):
        estimator, cfg = self._estimator()
        subtask = _stub_subtask(["out"], inputs=["in-a", "in-b"])
        # two unknown inputs + one never-seen output class, peak factor on
        expected = int(cfg.peak_factor * 3 * cfg.chunk_store_limit)
        assert estimator.estimate(subtask) == expected

    def test_observation_replaces_default_and_smooths(self):
        estimator, cfg = self._estimator()
        op = _SizedOp(4)
        subtask = _stub_subtask(["out"], op=op)
        default = estimator.output_bytes(subtask)
        assert default == cfg.chunk_store_limit
        estimator.observe(subtask, {"out": 200})
        assert estimator.output_bytes(subtask) == 200
        estimator.observe(subtask, {"out": 100})
        # EWMA with alpha 0.5
        assert estimator.output_bytes(subtask) == 150

    def test_inputs_prefer_meta_then_storage(self):
        estimator, cfg = self._estimator()
        estimator.meta.set("known", ChunkMeta(shape=(8,), nbytes=64,
                                              kind="tensor"))
        estimator.storage.put("stored", np.zeros(16), "worker-0")
        stored = estimator.storage.nbytes_of("stored")
        subtask = _stub_subtask(["o"], inputs=["known", "stored", "ghost"])
        assert estimator.input_bytes(subtask) == (
            64 + stored + cfg.chunk_store_limit
        )


class TestMemoryAdmission:
    def test_fits_starts_immediately(self):
        ledger = MemoryAdmission()
        decision = ledger.admit("w", 100, 1.0, used=0, limit=1_000,
                                allow_wait=True)
        assert decision.start == 1.0 and decision.wait == 0.0
        assert not decision.forced
        ledger.commit(decision, 2.0)
        assert ledger.active_bytes("w", 1.5) == 100
        assert ledger.active_bytes("w", 2.5) == 0

    def test_waits_for_earliest_ending_grant(self):
        ledger = MemoryAdmission()
        for end, nbytes in ((5.0, 400), (3.0, 400)):
            d = ledger.admit("w", nbytes, 0.0, used=0, limit=1_000,
                             allow_wait=True)
            ledger.commit(d, end)
        decision = ledger.admit("w", 400, 1.0, used=0, limit=1_000,
                                allow_wait=True)
        # 3 * 400 > 1000: wait for the grant ending at 3.0, not 5.0
        assert decision.start == 3.0
        assert decision.wait == 2.0
        assert not decision.forced
        assert ledger.total_wait == 2.0

    def test_deadlock_guard_forces_after_drain(self):
        ledger = MemoryAdmission()
        d = ledger.admit("w", 800, 0.0, used=0, limit=1_000, allow_wait=True)
        ledger.commit(d, 4.0)
        decision = ledger.admit("w", 900, 0.0, used=300, limit=1_000,
                                allow_wait=True)
        # even alone it oversubscribes (300 + 900 > 1000): admitted
        # anyway once every grant drained, with zero concurrent bytes.
        assert decision.start == 4.0
        assert decision.active == 0
        assert decision.forced
        assert ledger.forced_admissions == 1

    def test_no_wait_mode_admits_into_pressure(self):
        ledger = MemoryAdmission()
        d = ledger.admit("w", 800, 0.0, used=0, limit=1_000, allow_wait=False)
        ledger.commit(d, 4.0)
        decision = ledger.admit("w", 800, 1.0, used=0, limit=1_000,
                                allow_wait=False)
        assert decision.start == 1.0 and decision.active == 800

    def test_exclusive_drains_everything(self):
        ledger = MemoryAdmission()
        for end in (2.0, 6.0):
            d = ledger.admit("w", 10, 0.0, used=0, limit=1_000,
                             allow_wait=True)
            ledger.commit(d, end)
        decision = ledger.admit("w", 10, 1.0, used=0, limit=1_000,
                                allow_wait=True, exclusive=True)
        assert decision.start == 6.0 and decision.active == 0

    def test_begin_stage_clears_grants(self):
        ledger = MemoryAdmission()
        d = ledger.admit("w", 10, 0.0, used=0, limit=100, allow_wait=True)
        ledger.commit(d, 99.0)
        ledger.begin_stage()
        assert ledger.outstanding(0.0) == 0


class TestSchedulerLoadAccounting:
    def _assigned(self):
        cfg = Config()
        cluster = ClusterState(cfg)
        scheduler = Scheduler(cluster, cfg)
        graph: DAG = DAG()
        subtasks = [
            _stub_subtask([f"o{i}"], priority=i, band=None) for i in range(4)
        ]
        for subtask in subtasks:
            graph.add_node(subtask)
        scheduler.assign(graph)
        return scheduler, subtasks

    def test_completion_releases_estimated_load(self):
        scheduler, subtasks = self._assigned()
        assert sum(scheduler._band_load.values()) > 0
        for subtask in subtasks:
            assert subtask.load_estimate > 0
            scheduler.note_completed(subtask)
        # S1: load decays back to zero instead of accumulating forever
        assert sum(scheduler._band_load.values()) == 0

    def test_reassign_moves_load_and_placement(self):
        scheduler, subtasks = self._assigned()
        victim = subtasks[0]
        source = victim.band
        target = next(
            b.name for b in scheduler.cluster.bands if b.name != source
        )
        before_target = scheduler._band_load[target]
        scheduler.reassign(victim, target)
        assert victim.band == target
        assert scheduler._band_load[target] == pytest.approx(
            before_target + victim.load_estimate
        )
        assert all(
            scheduler.chunk_band[key] == target for key in victim.output_keys
        )


# ---------------------------------------------------------------------------
# end-to-end: backpressure, the ladder, and the deadlock guard
# ---------------------------------------------------------------------------

class TestAdmissionBackpressure:
    GROUPBY = {"chunk_limit": 4_000, "tree_reduce_threshold": 1}
    LIMIT = 32 * 1024

    def test_completes_where_no_backpressure_engine_dies(self):
        with make_session(**self.GROUPBY) as free:
            expected = groupby_shuffle(free)
        with make_session(memory_limit=self.LIMIT, **self.GROUPBY) as tight:
            actual = groupby_shuffle(tight)
            assert tight.executor.report.admission_wait_time > 0.0
            verify_memory_invariants(tight)
        assert_same_result(actual, expected)
        with make_session(memory_limit=self.LIMIT, admission_control=False,
                          oom_recovery=False, **self.GROUPBY) as seedlike:
            with pytest.raises(WorkerOutOfMemory):
                groupby_shuffle(seedlike)

    def test_serial_parallel_wait_accounting_identical(self):
        reports = {}
        for mode in (False, True):
            with make_session(parallel=mode, memory_limit=self.LIMIT,
                              **self.GROUPBY) as session:
                groupby_shuffle(session)
                report = session.executor.report
                reports[mode] = (
                    report.makespan,
                    report.admission_wait_time,
                    report.oom_retries,
                    report.degraded_subtasks,
                    report.pressure_splits,
                    report.forced_spill_bytes,
                    dict(report.peak_memory),
                )
                verify_memory_invariants(session)
        assert reports[True] == reports[False]
        assert reports[False][1] > 0.0


class TestOOMLadder:
    def test_ladder_escalates_to_retile_and_completes(self):
        with make_session() as free:
            expected = tensor_fanout_exact(free)
        with make_session(memory_limit=16 * 1024) as tight:
            actual = tensor_fanout_exact(tight)
            report = tight.executor.report
            assert report.oom_retries > 0
            assert report.degraded_subtasks > 0
            assert report.pressure_splits >= 1
            assert tight.last_report.pressure_splits >= 1
            verify_memory_invariants(tight)
        assert_same_result(actual, expected)

    def test_oom_recovery_off_is_fatal(self):
        with make_session(memory_limit=16 * 1024,
                          oom_recovery=False) as session:
            with pytest.raises(WorkerOutOfMemory):
                tensor_fanout_exact(session)

    def test_scripted_squeeze_fires_once_and_recovers(self):
        with make_session() as free:
            expected = tensor_fanout_exact(free)
        with make_session(memory_limit=64 * 1024) as session:
            session.cluster.faults.script_memory_squeeze(0, 0, factor=0.25)
            actual = tensor_fanout_exact(session)
            events = [
                e for e in session.cluster.faults.events
                if e.point == "mem_squeeze"
            ]
            assert len(events) == 1
            assert events[0].detail == "factor 0.25"
            # the squeeze is transient: the limit is back afterwards
            worker = events[0].target
            assert session.cluster.memory[worker].limit == 64 * 1024
            verify_memory_invariants(session)
        assert_same_result(actual, expected)

    def test_retile_limit_restored_after_pressure_splits(self):
        with make_session(memory_limit=16 * 1024) as session:
            tensor_fanout_exact(session)
            assert session.executor.report.pressure_splits >= 1
            assert session.config.chunk_store_limit == 8_000


class TestDeadlockGuard:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_budget_below_two_working_sets_terminates(self, parallel):
        """A budget smaller than any two concurrent working sets (the
        unconstrained per-worker peak is ~24K) must serialize through
        forced admissions, not deadlock."""
        with make_session() as free:
            expected = tensor_fanout_exact(free)
        with make_session(parallel=parallel, memory_limit=12 * 1024,
                          spill_to_disk=False) as tiny:
            actual = tensor_fanout_exact(tiny)
            assert tiny.executor.pressure.admission.forced_admissions > 0
            verify_memory_invariants(tiny)
        assert_same_result(actual, expected)


# ---------------------------------------------------------------------------
# shrinking-budget sweep (the Table II robustness claim in miniature)
# ---------------------------------------------------------------------------

class TestShrinkingBudgetSweep:
    #: descending per-worker budgets, down to ~3% of the comfortable one.
    GRID = [512, 384, 256, 192, 128, 96]

    def _min_completing_limit(self, admission: bool) -> int:
        floor = None
        for limk in self.GRID:
            try:
                with make_session(chunk_limit=64 * 1024,
                                  memory_limit=limk * 1024,
                                  admission_control=admission,
                                  oom_recovery=admission) as session:
                    tpch_q5(session)
                    verify_memory_invariants(session)
                floor = limk
            except WorkerOutOfMemory:
                break
        assert floor is not None, "every budget in the grid OOMed"
        return floor

    def test_full_engine_survives_strictly_smaller_budgets(self):
        with make_session(chunk_limit=64 * 1024) as free:
            expected = tpch_q5(free)
        full = self._min_completing_limit(admission=True)
        baseline = self._min_completing_limit(admission=False)
        assert full < baseline
        # and at the full engine's floor the answer is still exact
        with make_session(chunk_limit=64 * 1024,
                          memory_limit=full * 1024) as tight:
            actual = tpch_q5(tight)
        assert_same_result(actual, expected)
