"""Supervision suite: actor restarts, heartbeats, message chaos, speculation.

The contract under test (DESIGN.md §Supervision): with message-level
chaos at realistic rates — seeded drop/delay/duplicate faults on the
batched data-plane endpoints — plus scripted actor deaths, every
workload completes with results identical to a fault-free run and
``SimReport``s bit-identical across serial, thread and process
execution; a speculatively re-executed straggler changes wall-clock
only, never a simulated number.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import frame as pf
from repro.actors import Actor, ActorSystem, MessageChaos, Supervisor
from repro.cluster.cluster import ClusterState
from repro.config import Config, MessageFaultSpec
from repro.core import Session
from repro.core.dispatch import BandDispatcher, SubtaskComputation
from repro.core.supervision import HealthMonitor, SpeculationController
from repro.dataframe import from_frame
from repro.diagnostics import supervision_report
from repro.errors import ActorNotFound, DispatcherStall, RestartStorm
from repro.graph.dag import DAG
from repro.graph.entity import ChunkData
from repro.graph.subtask import Subtask
from repro.services import LIFECYCLE_UID, runner_uid
from repro.storage.service import StorageService
from repro.storage.shuffle import ShuffleManager
from repro.utils import DedupLog
from repro.workloads.tpch import ALL_QUERIES, generate_tables
from repro.workloads.tpch.queries import materialize

CHAOS_SEED = 20240806


def assert_same_result(actual, expected):
    if isinstance(expected, np.ndarray):
        assert np.asarray(actual).tobytes() == expected.tobytes()
    elif hasattr(expected, "equals"):
        assert actual.equals(expected)
    else:
        assert actual == pytest.approx(expected)


def make_session(parallel: bool = False, chunk_limit: int = 8_000,
                 message_faults: dict | None = None,
                 **overrides) -> Session:
    cfg = Config()
    cfg.chunk_store_limit = chunk_limit
    cfg.parallel_execution = parallel
    # force the dispatcher path even on small graphs / 1-core CI hosts.
    cfg.parallel_min_subtasks = 2
    cfg.parallel_min_cores = 1
    for name, value in (message_faults or {}).items():
        setattr(cfg.message_faults, name, value)
    for name, value in overrides.items():
        setattr(cfg, name, value)
    return Session(cfg)


def report_tuple(session: Session):
    report = session.executor.report
    return (
        report.makespan,
        report.total_compute_seconds,
        report.total_transfer_bytes,
        report.total_shuffle_bytes,
        report.n_subtasks,
        report.n_graph_nodes,
        report.retries,
        report.recomputed_subtasks,
        report.recovery_bytes,
        report.backoff_time,
        dict(report.peak_memory),
        dict(report.band_busy),
    )


def groupby_workload(session: Session):
    rng = np.random.default_rng(11)
    local = pf.DataFrame({
        "k": rng.integers(0, 200, 4_000),
        "v": rng.normal(size=4_000),
    })
    return from_frame(local, session).groupby("k").agg({"v": "sum"}).fetch()


def tpch_q1_workload(session: Session):
    tables = generate_tables(sf=0.1, seed=7)
    handles = {
        name: from_frame(frame, session) for name, frame in tables.items()
    }
    return materialize(ALL_QUERIES["q1"](handles))


MODES = [
    ("serial", {"parallel": False}),
    ("thread", {"parallel": True}),
    ("process", {"parallel": True, "execution_mode": "process"}),
]

CHAOS_RATES = {
    "seed": CHAOS_SEED,
    "drop_rate": 0.02,
    "delay_rate": 0.02,
    "duplicate_rate": 0.02,
}


# ---------------------------------------------------------------------------
# DedupLog: the at-least-once memo every batched endpoint rides on
# ---------------------------------------------------------------------------

class TestDedupLog:
    def test_none_token_is_never_deduplicated(self):
        log = DedupLog()
        assert log.check(None) == (False, None)
        log.record(None, "x")
        assert log.check(None) == (False, None)

    def test_second_check_returns_memo(self):
        log = DedupLog()
        token = ("session-1", 42)
        assert log.check(token) == (False, None)
        log.record(token, [1, 2, 3])
        assert log.check(token) == (True, [1, 2, 3])
        assert log.suppressed == 1

    def test_capacity_evicts_oldest(self):
        log = DedupLog(capacity=2)
        for i in range(3):
            log.record(("t", i), i)
        assert log.check(("t", 0)) == (False, None)  # evicted
        assert log.check(("t", 2)) == (True, 2)


# ---------------------------------------------------------------------------
# idempotent endpoints: duplicates leave service state byte-identical
# ---------------------------------------------------------------------------

class _FakeSubtask:
    """Duck-typed stand-in for lifecycle's finish_subtask path."""

    def __init__(self, input_keys, output_keys):
        self.input_keys = list(input_keys)
        self.output_keys = list(output_keys)
        self.stage_index = 0
        self.priority = 0


class TestIdempotentEndpoints:
    def _storage(self):
        cfg = Config()
        cluster = ClusterState(cfg)
        return cluster, StorageService(cluster, cfg)

    def test_put_many_duplicate_leaves_bytes_identical(self):
        cluster, storage = self._storage()
        worker = cluster.workers[0].name
        entries = [("a", np.arange(8.0), None), ("b", np.ones(4), None)]
        token = ("session-1", 1)
        sizes = storage.put_many(entries, worker, dedup_token=token)
        used_after_first = cluster.memory[worker].used
        again = storage.put_many(entries, worker, dedup_token=token)
        assert again == sizes
        assert cluster.memory[worker].used == used_after_first
        assert sorted(storage.all_keys()) == ["a", "b"]
        np.testing.assert_array_equal(storage.peek("a"), np.arange(8.0))
        cluster.shutdown()

    def test_put_many_fresh_token_applies_again(self):
        cluster, storage = self._storage()
        worker = cluster.workers[0].name
        entries = [("a", np.arange(8.0), None)]
        storage.put_many(entries, worker, dedup_token=("s", 1))
        # a retry mints a *new* token: the re-put must actually run.
        storage.delete("a")
        storage.put_many(entries, worker, dedup_token=("s", 2))
        assert storage.contains("a")
        cluster.shutdown()

    def test_register_partitions_duplicate_keeps_index_size(self):
        cluster, storage = self._storage()
        worker = cluster.workers[0].name
        manager = ShuffleManager(storage)
        storage.put("shuffle:s1:0:0", np.ones(4), worker)
        entries = [("s1", 0, 0, "shuffle:s1:0:0", worker, 32)]
        token = ("session-1", 7)
        manager.register_partitions(entries, dedup_token=token)
        size = manager.index_size()
        manager.register_partitions(entries, dedup_token=token)
        assert manager.index_size() == size
        assert manager.mapper_count("s1") == 1
        cluster.shutdown()

    def test_finish_subtask_duplicate_does_not_double_release(self):
        from repro.services.lifecycle import LifecycleService

        cluster, storage = self._storage()
        worker = cluster.workers[0].name
        lifecycle = LifecycleService(storage, None, Config())
        storage.put("in-a", np.ones(4), worker)
        # two consumers hold the input; one finish releases one of them.
        lifecycle.begin_stage({"in-a": 2}, retain=set())
        subtask = _FakeSubtask(["in-a"], ["out-a"])
        token = ("session-1", 3)
        freed = lifecycle.finish_subtask(subtask, dedup_token=token)
        assert freed == []
        # duplicate delivery: must NOT burn the second consumer's ref.
        assert lifecycle.finish_subtask(subtask, dedup_token=token) == []
        assert storage.contains("in-a")
        # the genuinely distinct second finish drops it to zero.
        freed = lifecycle.finish_subtask(
            _FakeSubtask(["in-a"], ["out-b"]), dedup_token=("session-1", 4))
        assert freed == ["in-a"]
        cluster.shutdown()

    def test_cache_record_many_duplicate_keeps_directory(self):
        from repro.services.cache import ResultCacheService

        cluster, storage = self._storage()
        worker = cluster.workers[0].name
        cfg = Config()
        cfg.result_cache_budget = 10**9
        cache = ResultCacheService(storage, cfg)
        storage.put("c-1", np.ones(8), worker)
        entries = [("ident-1", "c-1", 64, frozenset(), False)]
        token = ("session-1", 9)
        evicted = cache.record_many(entries, dedup_token=token)
        snap = cache.stats_snapshot()
        assert cache.record_many(entries, dedup_token=token) == evicted
        again = cache.stats_snapshot()
        assert again["entries"] == snap["entries"] == 1
        assert again["bytes_cached"] == snap["bytes_cached"]
        cluster.shutdown()

    @pytest.mark.parametrize("mode,kwargs", MODES)
    def test_full_duplication_is_invisible_end_to_end(self, mode, kwargs):
        """duplicate_rate=1.0: every tokened message lands twice."""
        clean = make_session(**kwargs)
        expected = groupby_workload(clean)
        baseline = report_tuple(clean)
        clean.close()

        noisy = make_session(
            message_faults={"seed": CHAOS_SEED, "duplicate_rate": 1.0},
            **kwargs)
        result = groupby_workload(noisy)
        chaos = noisy.cluster.actor_system.chaos
        assert chaos is not None and chaos.duplicated > 0
        assert report_tuple(noisy) == baseline
        noisy.close()
        assert_same_result(result, expected)


# ---------------------------------------------------------------------------
# message chaos + scripted actor deaths: bit-identical to fault-free
# ---------------------------------------------------------------------------

class TestMessageChaosBitIdentity:
    @pytest.mark.parametrize("mode,kwargs", MODES)
    def test_groupby_with_chaos_and_deaths_matches_fault_free(
            self, mode, kwargs):
        clean = make_session(**kwargs)
        expected = groupby_workload(clean)
        baseline = report_tuple(clean)
        clean.close()

        session = make_session(message_faults=dict(CHAOS_RATES), **kwargs)
        # one service-actor kill and one runner death, at fixed
        # structural points on the accounting walk.
        band = session.cluster.bands[0].name
        session.faults.script_actor_kill(0, 0, LIFECYCLE_UID)
        session.faults.script_actor_kill(0, 1, runner_uid(band))
        result = groupby_workload(session)
        assert report_tuple(session) == baseline
        plane = session.cluster.supervision
        assert plane.supervisor.total_kills == 2
        assert plane.supervisor.total_restarts >= 2
        session.close()
        assert_same_result(result, expected)

    @pytest.mark.parametrize("parallel", [False, True])
    def test_tpch_q1_with_chaos_matches_fault_free(self, parallel):
        clean = make_session(parallel=parallel, chunk_limit=64 * 1024)
        expected = tpch_q1_workload(clean)
        baseline = report_tuple(clean)
        clean.close()

        session = make_session(parallel=parallel, chunk_limit=64 * 1024,
                               message_faults=dict(CHAOS_RATES))
        result = tpch_q1_workload(session)
        assert report_tuple(session) == baseline
        session.close()
        assert_same_result(result, expected)

    def test_chaos_modes_agree_with_each_other(self):
        reports = []
        fired = []
        for _, kwargs in MODES:
            session = make_session(
                message_faults=dict(CHAOS_RATES), **kwargs)
            band = session.cluster.bands[0].name
            session.faults.script_actor_kill(0, 0, runner_uid(band))
            groupby_workload(session)
            reports.append(report_tuple(session))
            # the same messages fault in every mode: drops/delays/
            # duplicates are drawn from accounting-walk sequence
            # numbers, not delivery interleaving or session history.
            fired.append(session.cluster.actor_system.chaos.snapshot())
            session.close()
        assert reports[0] == reports[1] == reports[2]
        assert fired[0] == fired[1] == fired[2]


# ---------------------------------------------------------------------------
# supervisor: kill, lazy restart, restart storms
# ---------------------------------------------------------------------------

class _Counter(Actor):
    """Tiny stateful actor: restart resets its private count."""

    def __init__(self, start: int = 0):
        super().__init__()
        self.count = start

    def bump(self) -> int:
        self.count += 1
        return self.count


class TestSupervisor:
    def _system(self, restart_limit: int = 5):
        system = ActorSystem()
        system.create_pool("pool-a")
        supervisor = Supervisor(system, restart_limit=restart_limit)
        system.supervisor = supervisor
        return system, supervisor

    def test_deliver_to_killed_actor_restarts_transparently(self):
        system, supervisor = self._system()
        ref = system.create_actor("pool-a", _Counter, 10, uid="counter")
        supervisor.register("pool-a", "counter",
                            lambda: (_Counter, (10,), {}))
        assert ref.bump() == 11
        assert supervisor.kill("counter")
        # next delivery resurrects the actor from its factory.
        assert ref.bump() == 11
        assert supervisor.restarts_of("counter") == 1
        assert supervisor.total_kills == 1

    def test_unsupervised_actor_raises_actor_not_found(self):
        system, _ = self._system()
        ref = system.create_actor("pool-a", _Counter, uid="plain")
        system.destroy_actor("pool-a", "plain")
        with pytest.raises(ActorNotFound) as exc_info:
            ref.bump()
        assert exc_info.value.uid == "plain"

    def test_stopped_pool_raises_actor_not_found(self):
        system, _ = self._system()
        ref = system.create_actor("pool-a", _Counter, uid="plain")
        system.stop_pool("pool-a")
        with pytest.raises(ActorNotFound):
            ref.bump()

    def test_restart_storm_raises_typed_error(self):
        system, supervisor = self._system(restart_limit=2)
        ref = system.create_actor("pool-a", _Counter, uid="flappy")
        supervisor.register("pool-a", "flappy", lambda: (_Counter, (), {}))
        for _ in range(2):
            supervisor.kill("flappy")
            ref.bump()  # lazy restart
        supervisor.kill("flappy")
        with pytest.raises(RestartStorm):
            ref.bump()

    def test_kill_unknown_uid_raises(self):
        _, supervisor = self._system()
        with pytest.raises(ActorNotFound):
            supervisor.kill("never-registered")


# ---------------------------------------------------------------------------
# health monitor: expectation leases on the virtual clock
# ---------------------------------------------------------------------------

class TestHealthMonitor:
    def test_idle_uid_is_never_overdue(self):
        health = HealthMonitor(interval=1.0, miss_limit=3)
        health.watch("runner:band-0")
        assert health.overdue(now=1000.0) == []

    def test_armed_expectation_goes_overdue(self):
        health = HealthMonitor(interval=1.0, miss_limit=3)
        health.watch("runner:band-0")
        health.expect("runner:band-0", now=5.0)
        assert health.overdue(now=8.0) == []        # exactly at the lease
        assert health.overdue(now=8.5) == ["runner:band-0"]

    def test_beat_clears_the_lease(self):
        health = HealthMonitor(interval=1.0, miss_limit=3)
        health.expect("uid", now=5.0)
        health.beat("uid", now=6.0)
        assert health.overdue(now=100.0) == []
        assert health.last_beat("uid") == 6.0

    def test_declare_dead_disarms_and_counts(self):
        health = HealthMonitor(interval=1.0, miss_limit=1)
        health.expect("uid", now=0.0)
        health.declare_dead("uid", now=10.0)
        assert health.overdue(now=100.0) == []
        assert health.deaths_declared == 1

    def test_disabled_monitor_never_flags(self):
        health = HealthMonitor(interval=0.0, miss_limit=3)
        health.expect("uid", now=0.0)
        assert not health.enabled
        assert health.overdue(now=1e9) == []

    def test_probe_restarts_wedged_runner(self):
        system = ActorSystem()
        system.create_pool("worker-0")
        from repro.core.supervision import SupervisionPlane

        cfg = Config()
        cfg.heartbeat_interval = 1.0
        cfg.heartbeat_miss_limit = 2
        plane = SupervisionPlane(system, cfg)
        system.supervisor = plane.supervisor
        system.create_actor("worker-0", _Counter, uid="runner:b0")
        plane.register_runner("b0", "worker-0", "runner:b0",
                              lambda: (_Counter, (), {}))
        plane.expect_runner("b0", now=0.0)
        restarted = plane.probe(now=10.0)   # lease (2.0s) long expired
        assert restarted == ["runner:b0"]
        assert plane.runner_restarts == 1
        assert plane.health.deaths_declared == 1
        # the replacement is live and healthy.
        assert system.actor_ref("worker-0", "runner:b0").bump() == 1
        assert plane.probe(now=10.5) == []


# ---------------------------------------------------------------------------
# speculation: EWMA deadlines, scripted stragglers, bit-identical reports
# ---------------------------------------------------------------------------

class TestSpeculation:
    def test_no_deadline_without_history(self):
        controller = SpeculationController()
        subtask = Subtask([ChunkData("tensor", (1,), (0,))])
        assert controller.deadline(subtask) is None

    def test_deadline_floors_at_min_seconds(self):
        controller = SpeculationController(multiplier=4.0, min_seconds=0.5)
        subtask = Subtask([ChunkData("tensor", (1,), (0,))])
        controller.observe(subtask, 0.001)
        assert controller.deadline(subtask) == 0.5
        controller.observe(subtask, 10.0)
        assert controller.deadline(subtask) > 0.5

    def test_scripted_straggler_is_consumed_once(self):
        controller = SpeculationController()
        subtask = Subtask([ChunkData("tensor", (1,), (0,))])
        subtask.stage_index = 0
        subtask.priority = 1
        controller.script_straggler(0, 1, 0.01)
        t0 = time.monotonic()
        controller.straggle(subtask)
        assert time.monotonic() - t0 >= 0.01
        t0 = time.monotonic()
        controller.straggle(subtask)     # consumed: returns immediately
        assert time.monotonic() - t0 < 0.01

    def test_straggler_speculates_and_report_is_unchanged(self):
        base = make_session(parallel=True)
        expected = groupby_workload(base)
        baseline = report_tuple(base)
        base.close()

        session = make_session(parallel=True, speculation=True,
                               speculation_min_seconds=0.05)
        session.executor.speculation.script_straggler(0, 1, 0.75)
        result = groupby_workload(session)
        assert session.last_report.speculative_subtasks >= 1
        assert session.executor.speculative_subtasks >= 1
        assert report_tuple(session) == baseline
        session.close()
        assert_same_result(result, expected)

    def test_speculation_off_reports_zero(self):
        session = make_session(parallel=True)
        groupby_workload(session)
        assert session.executor.speculation is None
        assert session.last_report.speculative_subtasks == 0
        session.close()


# ---------------------------------------------------------------------------
# dispatcher watchdog: typed stall instead of silent re-wait
# ---------------------------------------------------------------------------

def _tiny_order(n: int = 2):
    graph: DAG = DAG()
    order = []
    for i in range(n):
        subtask = Subtask([ChunkData("tensor", (1,), (i,))])
        subtask.band = f"worker-0/band-{i % 2}"
        subtask.priority = i
        graph.add_node(subtask)
        order.append(subtask)
    return graph, order


class TestDispatcherStall:
    def test_wedged_compute_raises_dispatcher_stall(self):
        release = threading.Event()
        graph, order = _tiny_order(1)

        def blocked_compute(subtask, inputs):
            release.wait(timeout=30.0)
            return SubtaskComputation({}, {}, {})

        pool = ThreadPoolExecutor(max_workers=1)
        dispatcher = BandDispatcher(
            graph, order, blocked_compute, fetch=lambda keys: {},
            pool=pool, watchdog=0.05,
        )
        dispatcher.start()
        try:
            with pytest.raises(DispatcherStall) as exc_info:
                dispatcher.wait_for(order[0].key)
            stall = exc_info.value
            assert stall.key == order[0].key
            assert stall.inflight == 1
            assert stall.waited >= 0.1
        finally:
            release.set()
            dispatcher.shutdown()
            pool.shutdown(wait=True)

    def test_watchdog_windows_reset_on_progress(self):
        graph, order = _tiny_order(2)
        dispatcher = BandDispatcher(
            graph, order, lambda s, i: SubtaskComputation({}, {}, {}),
            fetch=lambda keys: {}, watchdog=0.2,
        )
        dispatcher.start()
        for subtask in order:
            assert dispatcher.wait_for(subtask.key) is not None
        dispatcher.shutdown()


# ---------------------------------------------------------------------------
# chaos accounting + diagnostics surface
# ---------------------------------------------------------------------------

class TestChaosAccounting:
    def test_chaos_draws_are_seed_deterministic(self):
        spec = MessageFaultSpec(seed=1, drop_rate=0.5, delay_rate=0.5,
                                duplicate_rate=0.5)
        one = MessageChaos(spec)
        two = MessageChaos(spec)
        tokens = [("s", i) for i in range(64)]
        plans_one = [one.plan("put_many", t) for t in tokens]
        plans_two = [two.plan("put_many", t) for t in tokens]
        assert plans_one == plans_two
        assert one.total_fired > 0

    def test_chaos_disabled_at_zero_rates(self):
        chaos = MessageChaos(MessageFaultSpec())
        assert not chaos.enabled

    def test_supervision_report_renders(self):
        session = make_session(
            message_faults={"seed": 1, "duplicate_rate": 0.02})
        groupby_workload(session)
        text = supervision_report(session)
        assert "actor supervision:" in text
        assert "supervised actors:" in text
        assert "message chaos:" in text
        session.close()

    def test_fault_free_run_has_zero_chaos_counters(self):
        session = make_session()
        groupby_workload(session)
        chaos = session.cluster.actor_system.chaos
        assert chaos is not None
        assert chaos.total_fired == 0
        plane = session.cluster.supervision
        assert plane.supervisor.total_restarts == 0
        assert plane.health.deaths_declared == 0
        session.close()
