"""Unit tests for the scheduler (breadth-first + locality) and meta service."""

import numpy as np
import pytest

from repro.cluster import ClusterState
from repro.config import Config
from repro.core import MetaService, Scheduler, meta_from_value
from repro.core.operator import Operator
from repro.frame import DataFrame, Series
from repro.graph import DAG, ChunkData, Subtask


class PassOp(Operator):
    def execute(self, ctx):
        return ctx.get(self.inputs[0].key)


def make_cluster(n_workers=2, bands_per_worker=2):
    cfg = Config()
    cfg.cluster.n_workers = n_workers
    cfg.cluster.bands_per_worker = bands_per_worker
    return ClusterState(cfg), cfg


def chunk(idx, inputs=()):
    if inputs:
        op = PassOp()
        return op.new_chunk(list(inputs), "tensor", (1,), (idx,))
    return ChunkData("tensor", (1,), (idx,))


class TestBreadthFirst:
    def test_initial_subtasks_fill_bands_in_order(self):
        cluster, cfg = make_cluster()
        scheduler = Scheduler(cluster, cfg)
        graph = DAG()
        subtasks = [Subtask([chunk(i)]) for i in range(4)]
        for s in subtasks:
            graph.add_node(s)
        scheduler.assign(graph)
        bands = [s.band for s in subtasks]
        assert bands == [
            "worker-0/band-0", "worker-0/band-1",
            "worker-1/band-0", "worker-1/band-1",
        ]

    def test_wraps_around_when_more_sources_than_bands(self):
        cluster, cfg = make_cluster(n_workers=1, bands_per_worker=2)
        scheduler = Scheduler(cluster, cfg)
        graph = DAG()
        subtasks = [Subtask([chunk(i)]) for i in range(5)]
        for s in subtasks:
            graph.add_node(s)
        scheduler.assign(graph)
        assert subtasks[0].band == subtasks[2].band == subtasks[4].band


class TestLocality:
    def _graph_with_dependency(self):
        src_chunk = chunk(0)
        dep_chunk = chunk(1, [src_chunk])
        src = Subtask([src_chunk])
        src.output_keys = [src_chunk.key]
        dep = Subtask([dep_chunk])
        dep.output_keys = [dep_chunk.key]
        graph = DAG()
        graph.add_edge(src, dep)
        return graph, src, dep

    def test_successor_follows_predecessor(self):
        cluster, cfg = make_cluster()
        scheduler = Scheduler(cluster, cfg)
        graph, src, dep = self._graph_with_dependency()
        scheduler.assign(graph)
        assert dep.band == src.band

    def test_locality_disabled_spreads(self):
        cluster, cfg = make_cluster()
        cfg.locality_scheduling = False
        scheduler = Scheduler(cluster, cfg)
        graph, src, dep = self._graph_with_dependency()
        scheduler.assign(graph)
        # least-loaded placement: the successor avoids the already-loaded band
        assert dep.band != src.band

    def test_majority_bytes_wins(self):
        cluster, cfg = make_cluster()
        scheduler = Scheduler(cluster, cfg)
        big = chunk(0)
        small = chunk(1)
        join_chunk = chunk(2, [big, small])
        s_big, s_small = Subtask([big]), Subtask([small])
        s_big.output_keys = [big.key]
        s_small.output_keys = [small.key]
        s_join = Subtask([join_chunk])
        graph = DAG()
        graph.add_edge(s_big, s_join)
        graph.add_edge(s_small, s_join)
        scheduler.assign(graph, input_nbytes={big.key: 1000, small.key: 10})
        assert s_join.band == s_big.band

    def test_chunk_band_recorded(self):
        cluster, cfg = make_cluster()
        scheduler = Scheduler(cluster, cfg)
        c = chunk(0)
        s = Subtask([c])
        s.output_keys = [c.key]
        graph = DAG()
        graph.add_node(s)
        scheduler.assign(graph)
        assert scheduler.chunk_band[c.key] == s.band


class TestMetaService:
    def test_meta_from_dataframe(self):
        df = DataFrame({"a": [1, 2], "b": ["x", "y"]})
        meta = meta_from_value(df)
        assert meta.kind == "dataframe"
        assert meta.shape == (2, 2)
        assert meta.columns == ["a", "b"]
        assert meta.nbytes > 0

    def test_meta_from_series_and_array(self):
        assert meta_from_value(Series([1.0])).kind == "series"
        assert meta_from_value(np.zeros((2, 3))).shape == (2, 3)
        assert meta_from_value(42).kind == "scalar"

    def test_set_get_require(self):
        service = MetaService()
        service.set_from_value("k", np.zeros(4))
        assert service.get("k").nbytes == 32
        assert service.require("k") is service.get("k")
        with pytest.raises(KeyError):
            service.require("missing")
        assert service.get("missing") is None

    def test_extras(self):
        service = MetaService()
        service.set_from_value("k", 1, extra={"input_rows": 10})
        service.update_extra("k", ratio=0.5)
        meta = service.require("k")
        assert meta.extra == {"input_rows": 10, "ratio": 0.5}

    def test_delete(self):
        service = MetaService()
        service.set_from_value("k", 1)
        service.delete("k")
        assert not service.has("k")
        assert len(service) == 0
