"""Multi-tenant serving plane: N sessions on one shared cluster.

Covers the tentpole (concurrent sessions against cluster-scoped service
singletons, weighted fair-share stage scheduling, per-tenant quotas and
scoped faults) and the session-isolation bugfixes that make it safe:

- atomic session-id allocation under concurrent ``Session()`` calls;
- ``close()`` waiting for in-flight ``execute()`` instead of destroying
  the session actor mid-run (typed :class:`SessionError` afterwards);
- synchronized default-session init (concurrent double-init never leaks
  a live actor plane);
- session-namespaced runtime keys (no cross-session storage/shuffle
  collisions);
- cross-session result-cache isolation: one tenant's ``free()``/chunk
  loss never drops another tenant's still-valid entries, and explicit
  ``.cache()`` pins survive a neighbour's chaos.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro
from repro import frame as pf
from repro.cluster.cluster import ClusterState
from repro.config import Config
from repro.core import Session
from repro.core.session import SessionError
from repro.dataframe import from_frame
from repro.services.scheduling import FairShareQueue
from repro.workloads.tpch import ALL_QUERIES, generate_tables
from repro.workloads.tpch.queries import materialize

from .golden_harness import CHAOS

KiB = 1024


def make_config(**overrides) -> Config:
    cfg = Config()
    cfg.chunk_store_limit = 4_000
    cfg.parallel_execution = False
    cfg.result_cache = True
    for name, value in overrides.items():
        setattr(cfg, name, value)
    return cfg


def groupby_frame(seed: int = 11, n: int = 2_000) -> pf.DataFrame:
    rng = np.random.default_rng(seed)
    return pf.DataFrame({
        "k": rng.integers(0, 100, n),
        "v": rng.normal(size=n),
    })


def run_groupby(session: Session, seed: int = 11, cache: bool = False):
    df = from_frame(groupby_frame(seed), session)
    agg = df.groupby("k").agg({"v": "sum"})
    if cache:
        agg = agg.cache()
    return agg, agg.fetch()


def run_tpch(session: Session, tables, name: str):
    handles = {
        tname: from_frame(frame, session) for tname, frame in tables.items()
    }
    return materialize(ALL_QUERIES[name](handles))


# ---------------------------------------------------------------------------
# satellite: atomic session-id allocation
# ---------------------------------------------------------------------------

class TestSessionIdAllocation:
    def test_concurrent_sessions_get_unique_ids(self):
        cluster = ClusterState(make_config())
        sessions: list[Session] = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            s = Session(cluster=cluster)
            with lock:
                sessions.append(s)

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        try:
            ids = [s.session_id for s in sessions]
            assert len(set(ids)) == len(ids) == 8
        finally:
            for s in sessions:
                s.close()
            cluster.shutdown()

    def test_counter_race_is_atomic(self):
        # hammer the raw counter path (what Session.__init__ uses) from
        # many threads; without the lock this loses increments.
        before = Session._counter
        barrier = threading.Barrier(16)

        def bump():
            barrier.wait()
            for _ in range(200):
                with Session._counter_lock:
                    Session._counter += 1

        threads = [threading.Thread(target=bump) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert Session._counter == before + 16 * 200


# ---------------------------------------------------------------------------
# satellite: close() vs in-flight execute()
# ---------------------------------------------------------------------------

class TestCloseVsExecute:
    def test_close_waits_for_inflight_execute(self):
        session = Session(make_config())
        started = threading.Event()
        release = threading.Event()
        outcome: dict = {}

        def hold_first_subtask(subtask, attempt) -> bool:
            started.set()
            release.wait(timeout=60)
            return False  # never inject a fault, just stall the run

        session.faults.on_compute(hold_first_subtask)

        df = from_frame(groupby_frame(), session)
        agg = df.groupby("k").agg({"v": "sum"})

        def run():
            try:
                outcome["value"] = session.execute(agg.data)
            except Exception as exc:  # noqa: BLE001 — recorded for assert
                outcome["error"] = exc

        worker = threading.Thread(target=run)
        worker.start()
        assert started.wait(timeout=30)
        closer = threading.Thread(target=session.close)
        closer.start()
        # the run is mid-flight and held; close must wait, not destroy
        # the session actor under it.
        assert not closer.join(timeout=0.3) and closer.is_alive()
        assert not session.closed
        release.set()
        worker.join(timeout=60)
        closer.join(timeout=60)
        assert "error" not in outcome, outcome.get("error")
        assert outcome["value"] is not None
        assert session.closed

    def test_execute_after_close_raises_session_error(self):
        session = Session(make_config())
        df = from_frame(groupby_frame(), session)
        session.close()
        with pytest.raises(SessionError):
            session.execute(df.data)
        with pytest.raises(SessionError):
            session.fetch(df.data)

    def test_execute_while_closing_raises_session_error(self):
        session = Session(make_config())
        session._closing = True
        df_data = from_frame(groupby_frame(), session).data
        with pytest.raises(SessionError):
            session.execute(df_data)
        session._closing = False
        session.close()

    def test_close_is_idempotent(self):
        session = Session(make_config())
        session.close()
        session.close()
        assert session.closed


# ---------------------------------------------------------------------------
# satellite: synchronized default-session init
# ---------------------------------------------------------------------------

class TestDefaultSessionInit:
    def test_concurrent_init_leaves_one_live_session(self):
        repro.shutdown()
        barrier = threading.Barrier(6)
        created: list[Session] = []
        lock = threading.Lock()

        def init():
            barrier.wait()
            s = repro.init(make_config())
            with lock:
                created.append(s)

        threads = [threading.Thread(target=init) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        try:
            live = [s for s in created if not s.closed]
            # every loser was closed before its successor was installed;
            # exactly the installed default survives.
            assert len(live) == 1
            assert repro.get_default_session() is live[0]
        finally:
            repro.shutdown()

    def test_repeated_init_closes_previous_default(self):
        repro.shutdown()
        first = repro.init(make_config())
        second = repro.init(make_config())
        try:
            assert first.closed
            assert not second.closed
            assert repro.get_default_session() is second
        finally:
            repro.shutdown()


# ---------------------------------------------------------------------------
# satellite: session-namespaced runtime keys
# ---------------------------------------------------------------------------

class TestKeyNamespacing:
    def test_runtime_keys_carry_session_prefix(self):
        # distinct workloads and no cache: a cross-tenant cache hit
        # would (correctly) rewire b's terminals to a's stored chunks.
        cluster = ClusterState(make_config(result_cache=False))
        a = Session(cluster=cluster)
        b = Session(cluster=cluster)
        try:
            agg_a, _ = run_groupby(a, seed=3)
            agg_b, _ = run_groupby(b, seed=23)
            keys_a = {c.key for c in agg_a.data.chunks}
            keys_b = {c.key for c in agg_b.data.chunks}
            assert all(k.startswith(f"{a.session_id}/") for k in keys_a)
            assert all(k.startswith(f"{b.session_id}/") for k in keys_b)
            assert not keys_a & keys_b
        finally:
            a.close()
            b.close()
            cluster.shutdown()

    def test_free_and_retile_only_touch_own_chunks(self):
        cluster = ClusterState(make_config())
        a = Session(cluster=cluster)
        b = Session(cluster=cluster)
        try:
            agg_a, val_a = run_groupby(a)
            agg_b, val_b = run_groupby(b, seed=23)
            b_keys = [c.key for c in agg_b.data.chunks]
            a.free(agg_a.data)
            # b's chunks are untouched by a's free
            assert not b.storage.missing_keys(b_keys)
            assert repr(b.fetch(agg_b.data)) == repr(val_b)
        finally:
            a.close()
            b.close()
            cluster.shutdown()

    def test_close_drops_only_own_keys(self):
        cluster = ClusterState(make_config(result_cache=False))
        a = Session(cluster=cluster)
        b = Session(cluster=cluster)
        try:
            run_groupby(a)
            agg_b, val_b = run_groupby(b, seed=23)
            a_prefix = f"{a.session_id}/"
            a.close()
            remaining = b.storage.all_keys()
            assert not any(k.startswith(a_prefix) for k in remaining)
            assert repr(b.fetch(agg_b.data)) == repr(val_b)
        finally:
            if not a.closed:
                a.close()
            b.close()
            cluster.shutdown()


# ---------------------------------------------------------------------------
# satellite: cross-session cache isolation
# ---------------------------------------------------------------------------

class TestCacheIsolation:
    def test_cross_tenant_cache_hits(self):
        """The shared-cache payoff: tenant B reuses tenant A's results."""
        cluster = ClusterState(make_config())
        a = Session(cluster=cluster)
        b = Session(cluster=cluster)
        try:
            _, val_a = run_groupby(a)
            _, val_b = run_groupby(b)
            assert repr(val_a) == repr(val_b)
            assert b.last_report.cache_hit_chunks > 0
            assert b.last_report.cache_reused_bytes > 0
        finally:
            a.close()
            b.close()
            cluster.shutdown()

    def test_tenant_free_does_not_evict_other_tenants_entries(self):
        cluster = ClusterState(make_config())
        a = Session(cluster=cluster)
        b = Session(cluster=cluster)
        try:
            agg_a, _ = run_groupby(a, seed=3)
            agg_b, val_b = run_groupby(b, seed=23)
            a.free(agg_a.data)
            # b's warm re-run still hits: a's scoped invalidation never
            # walked b's entries.
            _, val_b2 = run_groupby(b, seed=23)
            assert repr(val_b2) == repr(val_b)
            assert b.last_report.cache_hit_chunks > 0
        finally:
            a.close()
            b.close()
            cluster.shutdown()

    def test_chunk_loss_invalidation_is_scoped(self):
        cluster = ClusterState(make_config())
        a = Session(cluster=cluster)
        b = Session(cluster=cluster)
        try:
            agg_b, val_b = run_groupby(b, seed=23)
            # a loses a chunk mid-run (scripted chaos on a's injector
            # only) — recovery replays it; b's cache entries survive.
            a.faults.script_chunk_loss(0, 0)
            _, val_a = run_groupby(a, seed=3)
            assert val_a is not None
            assert any(e.point == "chunk_loss" for e in a.faults.events)
            _, val_b2 = run_groupby(b, seed=23)
            assert repr(val_b2) == repr(val_b)
            assert b.last_report.cache_hit_chunks > 0
        finally:
            a.close()
            b.close()
            cluster.shutdown()

    def test_explicit_pins_survive_neighbour_memory_squeeze(self):
        cluster = ClusterState(make_config())
        b = Session(cluster=cluster)
        squeezer = Session(
            cluster=cluster, tenant_memory_quota=0.25,
        )
        try:
            agg_b, val_b = run_groupby(b, seed=23, cache=True)
            pinned = [c.key for c in agg_b.data.chunks]
            squeezer.faults.script_memory_squeeze(0, 0, factor=0.2)
            run_groupby(squeezer, seed=3)
            # b's pinned chunks are still materialized and still hit.
            assert not b.storage.missing_keys(pinned)
            _, val_b2 = run_groupby(b, seed=23, cache=True)
            assert repr(val_b2) == repr(val_b)
            assert b.last_report.cache_hit_chunks > 0
        finally:
            b.close()
            squeezer.close()
            cluster.shutdown()


# ---------------------------------------------------------------------------
# tentpole: fair-share queue semantics
# ---------------------------------------------------------------------------

class TestFairShareQueue:
    def test_stride_accounting_tracks_weights(self):
        q = FairShareQueue(fair_share=True)
        q.register("light", 1.0)
        q.register("heavy", 3.0)
        for _ in range(6):
            q.acquire("light")
            q.release("light")
            q.acquire("heavy")
            q.release("heavy")
        snap = q.snapshot()
        assert snap["tenants"]["light"]["pass"] == pytest.approx(6.0)
        assert snap["tenants"]["heavy"]["pass"] == pytest.approx(2.0)
        assert snap["turns_granted"] == {"light": 6, "heavy": 6}

    def test_acquire_is_reentrant(self):
        q = FairShareQueue(fair_share=True)
        q.register("a", 1.0)
        q.acquire("a")
        q.acquire("a")  # nested (ensure_available inside execute)
        q.release("a")
        q.release("a")
        assert q.snapshot()["holder"] is None

    def test_contended_turn_blocks_then_proceeds(self):
        q = FairShareQueue(fair_share=True)
        q.register("a", 1.0)
        q.register("b", 1.0)
        q.acquire("a")
        got = threading.Event()

        def contend():
            q.acquire("b")
            got.set()
            q.release("b")

        t = threading.Thread(target=contend)
        t.start()
        assert not got.wait(timeout=0.2)
        assert q.snapshot()["waiting"] == 1
        q.release("a")
        assert got.wait(timeout=10)
        t.join()

    def test_lower_pass_goes_first_under_contention(self):
        q = FairShareQueue(fair_share=True)
        q.register("light", 1.0)
        q.register("heavy", 4.0)
        q.register("blocker", 1.0)
        # light has consumed four turns of virtual time; heavy none.
        for _ in range(4):
            q.acquire("light")
            q.release("light")
        q.acquire("blocker")  # blocker holds the turnstile
        order: list[str] = []
        done: list[threading.Event] = []

        def waiter(session, event):
            q.acquire(session)
            order.append(session)
            event.set()
            q.release(session)

        threads = []
        for session in ("light", "heavy"):  # light *arrives* first
            event = threading.Event()
            done.append(event)
            t = threading.Thread(target=waiter, args=(session, event))
            t.start()
            threads.append(t)
            deadline = time.monotonic() + 10
            while q.snapshot()["waiting"] < len(threads):
                assert time.monotonic() < deadline, "waiter never queued"
                time.sleep(0.001)
        q.release("blocker")
        for event in done:
            assert event.wait(timeout=10)
        for t in threads:
            t.join()
        # heavy's pass (1/4 per turn) is far below light's (4.0), so the
        # stride scheduler serves heavy first despite light arriving
        # first.
        assert order == ["heavy", "light"]


# ---------------------------------------------------------------------------
# tentpole: quotas, concurrency, bit-identity
# ---------------------------------------------------------------------------

class TestSharedClusterExecution:
    def test_concurrent_sessions_match_solo_results(self):
        tables = generate_tables(sf=0.2, seed=7)
        names = ["q1", "q6", "q1", "q6"]
        reference = {}
        for name in set(names):
            with Session(make_config(chunk_store_limit=64 * KiB)) as solo:
                reference[name] = repr(run_tpch(solo, tables, name))

        cluster = ClusterState(make_config(chunk_store_limit=64 * KiB))
        results: dict[int, tuple[str, str]] = {}
        errors: list = []

        def work(i: int, name: str):
            s = Session(cluster=cluster)
            try:
                results[i] = (name, repr(run_tpch(s, tables, name)))
            except Exception as exc:  # noqa: BLE001 — recorded for assert
                errors.append(exc)
            finally:
                s.close()

        threads = [
            threading.Thread(target=work, args=(i, name))
            for i, name in enumerate(names)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cluster.shutdown()
        assert not errors, errors
        assert len(results) == len(names)
        for name, value in results.values():
            assert value == reference[name]

    def test_chaos_tenant_is_isolated_and_bit_identical(self):
        tables = generate_tables(sf=0.2, seed=7)
        with Session(make_config(chunk_store_limit=64 * KiB)) as solo:
            ref_clean = repr(run_tpch(solo, tables, "q6"))
        chaos_cfg = make_config(chunk_store_limit=64 * KiB)
        for name, value in CHAOS.items():
            setattr(chaos_cfg.faults, name, value)
        with Session(chaos_cfg) as solo_chaos:
            ref_chaos = repr(run_tpch(solo_chaos, tables, "q1"))
            solo_chaos_retries = (
                solo_chaos.last_report.retries
                + solo_chaos.last_report.recomputed_subtasks
            )

        cluster = ClusterState(make_config(chunk_store_limit=64 * KiB))
        chaos = Session(chaos_cfg, cluster=cluster)
        clean = Session(cluster=cluster)
        out: dict = {}

        def run_chaos():
            out["chaos"] = repr(run_tpch(chaos, tables, "q1"))
            out["chaos_retries"] = (
                chaos.last_report.retries
                + chaos.last_report.recomputed_subtasks
            )

        def run_clean():
            out["clean"] = repr(run_tpch(clean, tables, "q6"))
            out["clean_retries"] = (
                clean.last_report.retries
                + clean.last_report.recomputed_subtasks
            )

        t1 = threading.Thread(target=run_chaos)
        t2 = threading.Thread(target=run_clean)
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        chaos.close()
        clean.close()
        cluster.shutdown()

        # the chaos tenant recovers to the same value its solo chaos run
        # produced, with the same fault draws (structural identities).
        assert out["chaos"] == ref_chaos
        assert out["chaos_retries"] == solo_chaos_retries
        # the clean tenant sees none of the chaos: identical value, zero
        # recovery activity.
        assert out["clean"] == ref_clean
        assert out["clean_retries"] == 0

    def test_quota_tenant_completes_without_stalling_neighbour(self):
        cluster = ClusterState(make_config())
        tight = Session(cluster=cluster, tenant_memory_quota=0.05)
        free = Session(cluster=cluster)
        out: dict = {}

        def run_tight():
            _, out["tight"] = run_groupby(tight, seed=3)

        def run_free():
            _, out["free"] = run_groupby(free, seed=23)

        threads = [
            threading.Thread(target=run_tight),
            threading.Thread(target=run_free),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        try:
            assert out.get("tight") is not None
            assert out.get("free") is not None
        finally:
            tight.close()
            free.close()
            cluster.shutdown()

    def test_tenant_weight_registered_with_scheduler(self):
        cluster = ClusterState(make_config())
        a = Session(cluster=cluster, tenant_weight=2.5)
        try:
            snap = a.scheduler.fair_share_snapshot()
            assert snap["tenants"][a.session_id]["weight"] == 2.5
        finally:
            a.close()
            snap = cluster.services.scheduling.fair_share_snapshot()
            assert a.session_id not in snap["tenants"]
            cluster.shutdown()

    def test_per_tenant_makespan_uses_own_frontier(self):
        cluster = ClusterState(make_config())
        a = Session(cluster=cluster)
        b = Session(cluster=cluster)
        try:
            run_groupby(a)
            makespan_a = a.last_report.makespan
            run_groupby(b)
            makespan_b = b.last_report.makespan
            assert makespan_a > 0
            # b's report reflects b's own work, not the cluster clock
            # advanced by a. (b warm-hits a's cache so it may be
            # cheaper, never the sum of both runs.)
            assert makespan_b <= makespan_a * 1.5
        finally:
            a.close()
            b.close()
            cluster.shutdown()
