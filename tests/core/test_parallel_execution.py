"""Concurrent-correctness tests for the event-driven parallel executor.

The contract under test (see DESIGN.md §Execution engine): parallel mode
may only change *wall-clock* behaviour. Results must be byte-identical
to serial mode, every ``SimReport`` field must match exactly, and the
reference-count cleanup must free each non-retained chunk exactly once.
"""

from collections import Counter

import numpy as np
import pytest

from types import SimpleNamespace

from repro.config import Config
from repro.core import Session
from repro.core.dispatch import BandDispatcher, shared_pool, should_use_parallel
from repro.storage.service import StorageService
from repro import frame as pf
from repro.dataframe import from_frame
from repro.tensor import rand


WIDE_SHAPE = (8192, 8)  # 512 KiB of float64
WIDE_CHUNK_LIMIT = 8192  # bytes -> 64 row chunks of 128 rows


def make_session(parallel: bool, chunk_limit: int = WIDE_CHUNK_LIMIT) -> Session:
    cfg = Config()
    cfg.chunk_store_limit = chunk_limit
    cfg.parallel_execution = parallel
    # force the dispatcher path: these tests exercise the band runner's
    # concurrency contract, so the small-graph/low-core serial fallback
    # must not quietly select the serial walk (e.g. on 1-core CI hosts).
    cfg.parallel_min_subtasks = 2
    cfg.parallel_min_cores = 1
    return Session(cfg)


def report_tuple(session: Session):
    report = session.executor.report
    return (
        report.makespan,
        report.total_compute_seconds,
        report.total_transfer_bytes,
        report.total_shuffle_bytes,
        report.n_subtasks,
        report.n_graph_nodes,
        dict(report.peak_memory),
        dict(report.band_busy),
    )


def wide_fanout_result(session: Session) -> np.ndarray:
    """A ≥64-chunk embarrassingly parallel graph plus a reduction."""
    t = rand(*WIDE_SHAPE, seed=7, session=session)
    out = (t * 2.0 + 1.0).sum()
    return np.asarray(out.fetch())


class TestWideFanout:
    def test_graph_is_actually_wide(self):
        with make_session(parallel=True) as session:
            wide_fanout_result(session)
            assert session.executor.report.n_subtasks >= 64

    def test_results_byte_identical_to_serial(self):
        with make_session(parallel=False) as serial:
            expected = wide_fanout_result(serial)
            serial_report = report_tuple(serial)
        with make_session(parallel=True) as parallel:
            actual = wide_fanout_result(parallel)
            parallel_report = report_tuple(parallel)
        assert actual.tobytes() == expected.tobytes()
        assert parallel_report == serial_report

    def test_refcount_frees_each_key_exactly_once(self, monkeypatch):
        removed: Counter = Counter()
        original_delete = StorageService.delete

        def counting_delete(self, key):
            if self.contains(key):
                removed[key] += 1
            original_delete(self, key)

        monkeypatch.setattr(StorageService, "delete", counting_delete)
        with make_session(parallel=True) as session:
            t = rand(*WIDE_SHAPE, seed=7, session=session)
            result = (t * 2.0 + 1.0).sum()
            result.fetch()
            retained = {chunk.key for chunk in result.data.chunks}
            resident = {
                key
                for worker in session.cluster.memory
                for key in session.storage.keys_on(worker)
            }
        # no double-delete:
        doubles = {key: n for key, n in removed.items() if n > 1}
        assert not doubles, f"keys freed more than once: {doubles}"
        # no leak: only the retained (user-visible) chunks stay resident.
        assert resident == retained
        # the cleanup actually ran over the wide stage
        assert len(removed) >= 64


class TestDataFrameDeterminism:
    def _pipeline(self, session: Session):
        rng = np.random.default_rng(11)
        local = pf.DataFrame({
            "k": rng.integers(0, 9, 600),
            "v": rng.normal(size=600),
            "w": rng.normal(size=600),
        })
        df = from_frame(local, session)
        agg = df.groupby("k").agg({"v": "mean", "w": "sum"})
        return agg.fetch()

    def test_simreport_identical_with_dynamic_tiling(self):
        with make_session(parallel=False, chunk_limit=4000) as serial:
            expected = self._pipeline(serial)
            serial_report = report_tuple(serial)
        with make_session(parallel=True, chunk_limit=4000) as parallel:
            actual = self._pipeline(parallel)
            parallel_report = report_tuple(parallel)
        assert actual.equals(expected)
        assert parallel_report == serial_report

    def test_per_call_override_beats_config(self):
        with make_session(parallel=True, chunk_limit=4000) as session:
            rng = np.random.default_rng(3)
            local = pf.DataFrame({"k": rng.integers(0, 5, 200),
                                  "v": rng.normal(size=200)})
            df = from_frame(local, session)
            doubled = df["v"] * 2
            (value,) = session.execute(doubled.data, parallel=False)
            assert np.allclose(
                np.asarray(value.to_numpy()),
                np.asarray(local["v"].to_numpy()) * 2,
            )


class TestErrorPropagation:
    def test_kernel_error_surfaces_in_both_modes(self):
        def boom(block):
            raise ValueError("kernel exploded")

        errors = {}
        for mode in (False, True):
            with make_session(parallel=mode) as session:
                t = rand(1024, 4, seed=1, session=session)
                bad = t.map_blocks(boom, out_cols=4)
                with pytest.raises(ValueError) as excinfo:
                    bad.fetch()
                errors[mode] = str(excinfo.value)
        assert errors[False] == errors[True] == "kernel exploded"

    def test_failure_does_not_poison_next_execution(self):
        def boom(block):
            raise ValueError("kernel exploded")

        with make_session(parallel=True) as session:
            t = rand(1024, 4, seed=1, session=session)
            with pytest.raises(ValueError):
                t.map_blocks(boom, out_cols=4).fetch()
            ok = (rand(1024, 4, seed=2, session=session) + 1.0).sum()
            assert np.isfinite(float(np.asarray(ok.fetch())))


class TestSerialFallback:
    """Small graphs and starved hosts must skip the thread-pool entirely.

    Dispatcher startup plus cross-thread handoff costs more than it saves
    on tiny stages (the BENCH_wallclock tpch_q5/fig8a regressions), so
    ``parallel_execution`` is a *request*: the executor honours it only
    when the graph is wide enough and the host has cores to use.
    """

    @staticmethod
    def _order(n_subtasks: int, n_bands: int):
        return [
            SimpleNamespace(band=f"worker-{i % n_bands}/band-0")
            for i in range(n_subtasks)
        ]

    def test_small_graph_goes_serial(self):
        cfg = Config()
        cfg.parallel_min_cores = 1
        order = self._order(cfg.parallel_min_subtasks - 1, n_bands=4)
        assert not should_use_parallel(order, cfg, cpu_count=8)

    def test_single_band_goes_serial(self):
        cfg = Config()
        cfg.parallel_min_cores = 1
        order = self._order(64, n_bands=1)
        assert not should_use_parallel(order, cfg, cpu_count=8)

    def test_starved_host_goes_serial(self):
        cfg = Config()
        order = self._order(64, n_bands=4)
        assert should_use_parallel(order, cfg, cpu_count=cfg.parallel_min_cores)
        assert not should_use_parallel(
            order, cfg, cpu_count=cfg.parallel_min_cores - 1
        )

    def test_wide_graph_on_wide_host_goes_parallel(self):
        cfg = Config()
        order = self._order(64, n_bands=4)
        assert should_use_parallel(order, cfg, cpu_count=8)

    def test_executor_skips_dispatcher_for_small_graphs(self, monkeypatch):
        """Integration: below-threshold runs never construct a dispatcher."""
        import repro.core.executor as executor_mod

        constructed = []
        original_init = BandDispatcher.__init__

        def counting_init(self, *args, **kwargs):
            constructed.append(1)
            original_init(self, *args, **kwargs)

        monkeypatch.setattr(executor_mod.BandDispatcher, "__init__",
                            counting_init)

        cfg = Config()
        cfg.parallel_execution = True
        cfg.parallel_min_subtasks = 10**6  # nothing is ever that wide
        cfg.parallel_min_cores = 1
        with Session(cfg) as session:
            t = rand(256, 4, seed=5, session=session)
            (t + 1.0).sum().fetch()
        assert not constructed

        cfg = Config()
        cfg.parallel_execution = True
        cfg.parallel_min_subtasks = 2
        cfg.parallel_min_cores = 1
        cfg.chunk_store_limit = WIDE_CHUNK_LIMIT
        with Session(cfg) as session:
            wide_fanout_result(session)
        assert constructed


class TestDispatcherInternals:
    def test_shared_pool_is_singleton(self):
        assert shared_pool() is shared_pool()

    def test_band_slots_serialize_per_band(self):
        """Two subtasks on one band never run concurrently."""
        import threading
        import time

        from repro.core.dispatch import SubtaskComputation
        from repro.graph.dag import DAG
        from repro.graph.entity import ChunkData
        from repro.graph.subtask import Subtask

        running = set()
        overlaps = []
        lock = threading.Lock()

        def compute(subtask, inputs):
            with lock:
                if subtask.band in running:
                    overlaps.append(subtask.key)
                running.add(subtask.band)
            time.sleep(0.01)
            with lock:
                running.discard(subtask.band)
            return SubtaskComputation({}, {}, {})

        graph: DAG = DAG()
        order = []
        for i in range(6):
            chunk = ChunkData("tensor", (1,), index=(i,))
            subtask = Subtask([chunk])
            subtask.band = f"worker-0/band-{i % 2}"
            subtask.priority = i
            graph.add_node(subtask)
            order.append(subtask)
        dispatcher = BandDispatcher(
            graph, order, compute, fetch=lambda keys: {},
        )
        dispatcher.start()
        try:
            for subtask in order:
                dispatcher.wait_for(subtask.key)
        finally:
            dispatcher.shutdown()
        assert not overlaps
