"""Correctness tests for the lineage-keyed result cache.

The cache is only allowed to change *how much work runs*, never *what
comes out*: every scenario here compares a cache-enabled run — warm,
under seeded chaos, under memory squeeze, after source mutation —
against the cache-disabled engine and requires bit-identical results
(``repr`` equality of the fetched frames, the same notion of equality
the golden suite uses).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import frame as pf
from repro.dataframe import from_frame
from tests.core.golden_harness import (
    CHAOS,
    WORKLOADS,
    make_session,
    tpch_q5,
)


def cached_session(**overrides):
    overrides.setdefault("result_cache", True)
    return make_session(**overrides)


class TestWarmReuse:
    def test_warm_tpch_q5_skips_and_matches(self):
        with cached_session(chunk_limit=64 * 1024) as session:
            cold = repr(tpch_q5(session))
            cold_subtasks = session.last_report.n_subtasks
            warm = repr(tpch_q5(session))
            report = session.last_report
        assert warm == cold
        assert cold_subtasks > 0
        # acceptance dial: the warm run skips >= 80% of the subtasks.
        assert report.n_subtasks <= 0.2 * cold_subtasks
        assert report.cache_hit_chunks > 0
        assert report.cache_reused_bytes > 0

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_warm_matches_uncached(self, name):
        workload, overrides = WORKLOADS[name]
        with make_session(**overrides) as plain:
            expected = repr(workload(plain))
        with cached_session(**overrides) as session:
            assert repr(workload(session)) == expected  # cold
            assert repr(workload(session)) == expected  # warm
            assert session.last_report.cache_hit_chunks > 0

    def test_disabled_cache_is_inert(self):
        workload, overrides = WORKLOADS["groupby_shuffle"]
        with make_session(**overrides) as session:
            workload(session)
            workload(session)
            report = session.last_report
            stats = session.cache.stats_snapshot()
        assert report.cache_hit_chunks == 0
        assert report.cache_reused_bytes == 0
        assert stats["entries"] == 0 and stats["hits"] == 0

    def test_overlapping_queries_share_prefix(self):
        # two queries sharing an aggregation prefix: the second one pulls
        # the aggregated chunks from the cache and only executes its new
        # tail (the overlapping-query shape of the benchmark sweep).
        rng = np.random.default_rng(3)
        local = pf.DataFrame({
            "k": rng.integers(0, 20, 4_000),
            "v": rng.normal(size=4_000),
        })
        with cached_session(chunk_limit=4_000) as session:
            first = repr(
                from_frame(local, session).groupby("k")
                .agg({"v": "sum"}).fetch())
            hits0 = session.cache.stats_snapshot()["hits"]
            second = repr(
                from_frame(local, session).groupby("k")
                .agg({"v": "sum"}).sort_values("v").fetch())
            hits1 = session.cache.stats_snapshot()["hits"]
        assert first != second
        assert hits1 > hits0

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_modes_agree_when_cached(self, mode):
        workload, overrides = WORKLOADS["groupby_shuffle"]
        kwargs = dict(overrides)
        if mode != "serial":
            kwargs.update(parallel=True, execution_mode=mode)
            if mode == "process":
                kwargs["procpool_workers"] = 2
        with cached_session(**kwargs) as session:
            cold = repr(workload(session))
            warm = repr(workload(session))
            report = session.last_report
        assert warm == cold
        if mode == "serial":
            TestWarmReuse._serial_baseline = (
                cold, report.n_subtasks, report.cache_hit_chunks)
        else:
            base = getattr(TestWarmReuse, "_serial_baseline", None)
            if base is not None:
                assert (cold, report.n_subtasks,
                        report.cache_hit_chunks) == base


class TestInvalidation:
    def test_source_mutation_recomputes(self):
        rng = np.random.default_rng(8)
        local = pf.DataFrame({
            "k": rng.integers(0, 10, 2_000),
            "v": rng.normal(size=2_000),
        })
        with cached_session(chunk_limit=4_000) as session:
            stale = repr(
                from_frame(local, session).groupby("k")
                .agg({"v": "sum"}).fetch())
            # in-place mutation of the client frame: its content
            # fingerprint — and so every downstream identity — changes.
            local["v"].values[:100] = 0.0
            fresh = repr(
                from_frame(local, session).groupby("k")
                .agg({"v": "sum"}).fetch())
        with make_session(chunk_limit=4_000) as plain:
            expected = repr(
                from_frame(local, plain).groupby("k")
                .agg({"v": "sum"}).fetch())
        assert fresh != stale
        assert fresh == expected

    def test_free_invalidates_dependents(self):
        rng = np.random.default_rng(11)
        local = pf.DataFrame({
            "k": rng.integers(0, 20, 2_000),
            "v": rng.normal(size=2_000),
        })
        with cached_session(chunk_limit=4_000) as session:
            remote = from_frame(local, session).groupby("k").agg(
                {"v": "sum"})
            cold = repr(remote.fetch())
            session.free(remote.data)
            stats = session.cache.stats_snapshot()
            assert stats["invalidations"] > 0
            warm = repr(
                from_frame(local, session).groupby("k")
                .agg({"v": "sum"}).fetch())
        assert warm == cold

    def test_chunk_loss_purges_cache_entries(self):
        # a scripted chunk loss during the cold run must leave no cache
        # entry pointing at the lost bytes — the warm run may reuse what
        # survived but must recompute the lost lineage bit-identically.
        workload, overrides = WORKLOADS["groupby_shuffle"]
        with make_session(**overrides) as plain:
            expected = repr(workload(plain))
        with cached_session(**overrides) as session:
            session.cluster.faults.script_chunk_loss(0, 0)
            assert repr(workload(session)) == expected
            cached = set(session.cache.cached_chunk_keys())
            for key in cached:
                assert session.storage.contains(key)
            assert repr(workload(session)) == expected

    def test_chaos_matrix_matches_uncached(self):
        workload, overrides = WORKLOADS["groupby_shuffle"]
        with make_session(faults=CHAOS, **overrides) as plain:
            expected = repr(workload(plain))
        with cached_session(faults=CHAOS, **overrides) as session:
            assert repr(workload(session)) == expected
            assert repr(workload(session)) == expected

    def test_memory_squeeze_matches_uncached(self):
        workload, overrides = WORKLOADS["sort"]
        with make_session(memory_limit=48 * 1024, **overrides) as plain:
            expected = repr(workload(plain))
        with cached_session(memory_limit=48 * 1024, **overrides) as session:
            assert repr(workload(session)) == expected
            assert repr(workload(session)) == expected


class TestBudget:
    def test_budget_eviction_keeps_results_correct(self):
        workload, overrides = WORKLOADS["groupby_shuffle"]
        with cached_session(result_cache_budget=1, **overrides) as session:
            cold = repr(workload(session))
            warm = repr(workload(session))
            stats = session.cache.stats_snapshot()
        assert warm == cold
        assert stats["evictions"] > 0
        assert stats["bytes_cached"] <= 1

    def test_explicit_cache_survives_budget(self):
        rng = np.random.default_rng(13)
        local = pf.DataFrame({
            "k": rng.integers(0, 10, 2_000),
            "v": rng.normal(size=2_000),
        })
        with cached_session(result_cache_budget=1,
                            chunk_limit=4_000) as session:
            remote = from_frame(local, session).groupby("k").agg(
                {"v": "sum"}).cache()
            cold = repr(remote.fetch())
            stats = session.cache.stats_snapshot()
            assert stats["entries"] > 0  # explicit entries outlive budget
            hits0 = stats["hits"]
            warm = repr(
                from_frame(local, session).groupby("k")
                .agg({"v": "sum"}).fetch())
            assert session.cache.stats_snapshot()["hits"] > hits0
        assert warm == cold

    def test_eviction_does_not_invalidate_dependents(self):
        # eviction forgets an entry but entries built on top stay valid:
        # a warm run may still hit downstream even when upstream sources
        # were evicted for budget.
        workload, overrides = WORKLOADS["merge"]
        with cached_session(**overrides) as session:
            cold = repr(workload(session))
            warm = repr(workload(session))
            stats = session.cache.stats_snapshot()
        assert warm == cold
        assert stats["invalidations"] == 0
