"""The service-plane acceptance suite.

Three pillars:

1. **Bit-identical reports** — every golden scenario (fault-free, seeded
   chaos, memory squeeze; serial and parallel) replays against the
   actor-plane engine and must match the pre-refactor goldens
   field-for-field (floats survive the JSON round-trip exactly, so this
   is bit equality).
2. **A real RPC trace** — a TPC-H q5 run leaves a message log whose
   sender -> recipient edges are exactly the service topology the
   architecture promises (session actor fan-out, lifecycle-owned frees,
   router-to-worker tier calls, runner-attributed compute reads).
3. **Lifecycle** — sessions are thin clients holding actor refs only,
   close is idempotent and destroys the plane, and the actor system
   survives pools being stopped mid-delivery.
"""

from __future__ import annotations

import json
import threading

import pytest
from tests.core.golden_harness import (
    GOLDEN_PATH,
    WORKLOADS,
    make_session,
    run_scenario,
    scenarios,
    tpch_q5,
)

from repro.actors import Actor, ActorRef
from repro.cluster.cluster import SUPERVISOR_ADDRESS
from repro.errors import ActorError, SessionError
from repro.services import (
    LIFECYCLE_UID,
    META_UID,
    SCHEDULING_UID,
    SHUFFLE_UID,
    STORAGE_UID,
    runner_uid,
    session_actor_uid,
    worker_storage_uid,
)

with open(GOLDEN_PATH) as f:
    GOLDENS = json.load(f)


# ---------------------------------------------------------------------------
# 1. golden reports: the refactor changed no simulated number
# ---------------------------------------------------------------------------

class TestGoldenReports:
    @pytest.mark.parametrize(
        "name,spec", scenarios(), ids=[name for name, _ in scenarios()],
    )
    def test_report_bit_identical(self, name, spec):
        got = json.loads(json.dumps(run_scenario(spec)))
        assert got == GOLDENS[name], (
            f"scenario {name} diverged from the pre-refactor engine"
        )


# ---------------------------------------------------------------------------
# 2. message trace: the log records the promised service topology
# ---------------------------------------------------------------------------

class TestMessageTrace:
    @pytest.fixture(scope="class")
    def q5_session(self):
        _, overrides = WORKLOADS["tpch_q5"]
        with make_session(parallel=False, **overrides) as session:
            tpch_q5(session)
            yield session

    def test_every_service_received_messages(self, q5_session):
        log = q5_session.cluster.actor_system.log
        session_uid = session_actor_uid(q5_session.session_id)
        for uid in (META_UID, STORAGE_UID, SCHEDULING_UID, LIFECYCLE_UID,
                    SHUFFLE_UID, session_uid):
            assert log.count_for(uid) > 0, f"{uid} never got a message"
        worker = q5_session.cluster.workers[0].name
        assert log.count_for(worker_storage_uid(worker)) > 0
        band = q5_session.cluster.bands[0].name
        assert log.count_for(runner_uid(band)) > 0

    def test_counts_consistent(self, q5_session):
        log = q5_session.cluster.actor_system.log
        snapshot = log.snapshot()
        assert snapshot["total_delivered"] == sum(
            snapshot["recipients"].values()
        )
        assert snapshot["total_delivered"] == sum(snapshot["edges"].values())
        # the engine executed hundreds of subtasks; the plane must have
        # carried far more messages than the bounded window retains.
        assert snapshot["total_delivered"] > log.capacity / 10

    def test_sender_recipient_edges(self, q5_session):
        """The architecture's call graph, as actually delivered."""
        edges = q5_session.cluster.actor_system.log.edges()
        session_uid = session_actor_uid(q5_session.session_id)
        band = q5_session.cluster.bands[0].name
        worker = q5_session.cluster.workers[0].name
        expected = {
            # the thin client talks to its coordinator only.
            ("<external>", session_uid),
            # the coordinator (executor inside it) fans out to services.
            (session_uid, STORAGE_UID),
            (session_uid, META_UID),
            (session_uid, SCHEDULING_UID),
            (session_uid, LIFECYCLE_UID),
            (session_uid, runner_uid(band)),
            # refcount frees go out through the lifecycle service —
            # data to storage, stale index entries to shuffle.
            (LIFECYCLE_UID, STORAGE_UID),
            (LIFECYCLE_UID, SHUFFLE_UID),
            # the storage router delegates tier ops to worker actors.
            (STORAGE_UID, worker_storage_uid(worker)),
            # serial-mode compute reads are attributed to the runner.
            (runner_uid(band), STORAGE_UID),
        }
        missing = expected - edges
        assert not missing, f"missing service-plane edges: {sorted(missing)}"

    def test_client_never_calls_backends_directly(self, q5_session):
        """``<external>`` (the thin client) only reaches the session
        actor and read-only service counters — never worker tiers."""
        edges = q5_session.cluster.actor_system.log.edges()
        worker_uids = {
            worker_storage_uid(w.name) for w in q5_session.cluster.workers
        }
        external = {r for s, r in edges if s == "<external>"}
        assert not external & worker_uids

    def test_parallel_compute_attributed_to_band_runner(self):
        _, overrides = WORKLOADS["groupby_shuffle"]
        with make_session(parallel=True, **overrides) as session:
            WORKLOADS["groupby_shuffle"][0](session)
            edges = session.cluster.actor_system.log.edges()
        senders = {s for s, _ in edges}
        assert "band-runner" in senders, (
            "pool-thread deliveries should carry the band-runner label"
        )
        # shuffle-map outputs register through the coordinator.
        session_uid = session_actor_uid(session.session_id)
        assert (session_uid, SHUFFLE_UID) in edges


# ---------------------------------------------------------------------------
# 3. lifecycle: thin client, idempotent close, stop_pool during delivery
# ---------------------------------------------------------------------------

class TestSessionIsThinClient:
    def test_session_holds_only_refs(self):
        with make_session() as session:
            for name in ("storage", "meta", "scheduler", "shuffle",
                         "lifecycle"):
                assert isinstance(getattr(session, name), ActorRef), (
                    f"session.{name} must be an actor ref, not a service"
                )
            assert isinstance(session._actor_ref, ActorRef)
            # no raw service object hides in the client's state.
            from repro.core.meta import MetaService
            from repro.storage.service import StorageService
            for value in vars(session).values():
                assert not isinstance(value, (StorageService, MetaService))

    def test_executor_services_are_refs(self):
        with make_session() as session:
            executor = session.executor
            assert isinstance(executor.storage, ActorRef)
            assert isinstance(executor.meta, ActorRef)
            assert isinstance(executor.scheduling, ActorRef)
            assert isinstance(executor.lifecycle, ActorRef)
            assert isinstance(executor.shuffle, ActorRef)
            assert all(
                isinstance(r, ActorRef) for r in executor.runners.values()
            )


class TestClose:
    def test_close_is_idempotent(self):
        session = make_session()
        session.close()
        session.close()
        assert session.closed

    def test_close_destroys_session_actor_and_pools(self):
        session = make_session()
        system = session.cluster.actor_system
        uid = session_actor_uid(session.session_id)
        assert system.has_actor(SUPERVISOR_ADDRESS, uid)
        session.close()
        assert not system.has_actor(SUPERVISOR_ADDRESS, uid)
        assert system.addresses() == []

    def test_del_after_close_is_silent(self):
        session = make_session()
        session.close()
        session.__del__()

    def test_del_closes_unclosed_session(self):
        session = make_session()
        system = session.cluster.actor_system
        session.__del__()
        assert session.closed
        assert system.addresses() == []

    def test_close_survives_external_shutdown(self):
        """A pool torn down behind the session's back must not make
        close raise (satellite: wire close to destroy_actor/stop_pool)."""
        session = make_session()
        session.cluster.actor_system.shutdown()
        session.close()
        assert session.closed

    def test_closed_session_rejects_fetch(self):
        import numpy as np

        from repro import frame as pf
        from repro.dataframe import from_frame
        session = make_session()
        df = from_frame(
            pf.DataFrame({"a": np.arange(8, dtype=float)}), session
        )
        df.execute()
        session.close()
        with pytest.raises(SessionError):
            session.fetch(df.data)


class _Stopper(Actor):
    """An actor that stops another pool while handling a message."""

    def stop(self, address):
        self._system.stop_pool(address)
        return "stopped"


class _Counter(Actor):
    def __init__(self):
        super().__init__()
        self.calls = 0
        self.stopped = False

    def ping(self):
        self.calls += 1
        return self.calls

    def on_stop(self):
        self.stopped = True


class TestStopPoolDuringDelivery:
    def test_stop_other_pool_mid_delivery(self):
        from repro.actors import ActorSystem
        system = ActorSystem()
        system.create_pool("sup")
        system.create_pool("w0")
        stopper = system.create_actor("sup", _Stopper, uid="stopper")
        counter_actor = _Counter
        counter = system.create_actor("w0", counter_actor, uid="counter")
        assert counter.ping() == 1
        assert stopper.stop("w0") == "stopped"
        # the stopped pool's actors are destroyed (on_stop ran) and
        # further sends fail loudly instead of corrupting state.
        with pytest.raises(ActorError):
            counter.ping()
        assert "w0" not in system.addresses()
        # the delivering pool survives, and the log stayed consistent.
        assert system.log.count_for("stopper") == 1
        assert system.log.count_for("counter") == 1

    def test_stop_own_pool_mid_delivery(self):
        from repro.actors import ActorSystem
        system = ActorSystem()
        system.create_pool("sup")
        stopper = system.create_actor("sup", _Stopper, uid="stopper")
        assert stopper.stop("sup") == "stopped"
        with pytest.raises(ActorError):
            stopper.stop("sup")

    def test_concurrent_delivery_sender_attribution(self):
        """Deliveries racing on two threads never cross-attribute
        senders (the thread-local current-actor fix)."""
        from repro.actors import ActorSystem
        system = ActorSystem()
        system.create_pool("sup")

        class Relay(Actor):
            def __init__(self, target=None):
                super().__init__()
                self.target = target

            def relay(self):
                if self.target is not None:
                    return self.target.ping()
                return None

        counter = system.create_actor("sup", _Counter, uid="counter")
        relay_a = system.create_actor("sup", Relay, counter, uid="relay-a")
        relay_b = system.create_actor("sup", Relay, counter, uid="relay-b")
        errors: list[Exception] = []

        def hammer(ref):
            try:
                for _ in range(200):
                    ref.relay()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(ref,))
            for ref in (relay_a, relay_b) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        edge_counts = system.log.edge_counts()
        # every ping came from a relay; none was mis-attributed.
        assert edge_counts[("relay-a", "counter")] == 400
        assert edge_counts[("relay-b", "counter")] == 400
        assert ("<external>", "counter") not in edge_counts
