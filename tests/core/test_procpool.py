"""Acceptance suite for process-pool execution and the batched data plane.

Four pillars:

1. **Wire protocol** — payloads round-trip through the protocol-5
   encoder on both the inline and the shared-memory path, and the
   shared-memory path really is zero-copy (the decoded buffers live in
   the mapped segment).
2. **Bit-identical reports** — every golden scenario replayed with
   ``execution_mode="process"`` must match the committed goldens
   field-for-field: moving kernels out of the GIL may not change a
   single simulated number.
3. **Crash recovery** — a worker process dying mid-subtask surfaces as
   :class:`WorkerProcessCrash` and recovers through the ordinary
   lineage-retry path, producing the correct result.
4. **Message budget** — the RPC-batching work's target: TPC-H q5 must
   stay at or below half the pre-batching messages-per-subtask.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import numpy as np
import pytest
from tests.core.golden_harness import (
    GOLDEN_PATH,
    WORKLOADS,
    make_session,
    run_scenario,
    scenarios,
)

from repro import frame as pf
from repro.core.procpool import decode_payload, encode_payload
from repro.dataframe import from_frame
from repro.diagnostics import messages_per_subtask

with open(GOLDEN_PATH) as f:
    GOLDENS = json.load(f)


# ---------------------------------------------------------------------------
# 1. wire protocol
# ---------------------------------------------------------------------------

class TestWireProtocol:
    def test_inline_roundtrip(self):
        obj = {"a": np.arange(16), "b": "text", "n": None}
        payload, shm = encode_payload(obj, threshold=1 << 20)
        assert shm is None  # below threshold: buffers ride the pickle
        out, out_shm = decode_payload(payload)
        assert out_shm is None
        np.testing.assert_array_equal(out["a"], obj["a"])
        assert out["b"] == "text" and out["n"] is None

    def test_shared_memory_roundtrip_zero_copy(self):
        arr = np.arange(64 * 1024, dtype=np.float64)
        payload, shm = encode_payload({"x": arr}, threshold=1024)
        assert shm is not None
        try:
            out, out_shm = decode_payload(payload)
            assert out_shm is not None
            np.testing.assert_array_equal(out["x"], arr)
            # zero-copy: the decoded array's buffer lives inside the
            # mapped segment, so closing the mapping is refused while
            # the view is alive.
            with pytest.raises(BufferError):
                out_shm.close()
            del out
            out_shm.close()
        finally:
            shm.close()
            shm.unlink()

    def test_identity_preserved_across_boundary(self):
        # op_results and outputs may share one object; a single pickle
        # of the whole record must keep that identity.
        arr = np.arange(8)
        payload, shm = encode_payload({"a": arr, "b": arr}, threshold=1 << 20)
        assert shm is None
        out, _ = decode_payload(payload)
        assert out["a"] is out["b"]


# ---------------------------------------------------------------------------
# 2. golden reports: process mode changes no simulated number
# ---------------------------------------------------------------------------

class TestProcessModeGoldens:
    @pytest.mark.parametrize(
        "name,spec", scenarios(), ids=[name for name, _ in scenarios()],
    )
    def test_report_bit_identical(self, name, spec):
        pspec = dict(spec)
        pspec["parallel"] = True
        pspec["execution_mode"] = "process"
        got = json.loads(json.dumps(run_scenario(pspec)))
        assert got == GOLDENS[name]


# ---------------------------------------------------------------------------
# 3. crash recovery
# ---------------------------------------------------------------------------

def _kamikaze(df):
    """Dies in a pool worker; runs clean on the inline recovery path."""
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return df


class TestWorkerCrashRecovery:
    def test_worker_death_recovers_with_correct_result(self):
        rng = np.random.default_rng(3)
        local = pf.DataFrame({
            "k": rng.integers(0, 8, 400),
            "v": rng.normal(size=400),
        })
        with make_session(parallel=True, chunk_limit=2_000,
                          execution_mode="process") as session:
            df = from_frame(local, session)
            out = df.map_partitions(_kamikaze, columns=["k", "v"]).fetch()
            procpool = session.cluster._procpool
            assert procpool is not None and procpool.crashes > 0
        np.testing.assert_array_equal(
            np.asarray(out["k"].values, int),
            np.asarray(local["k"].values, int),
        )
        np.testing.assert_allclose(
            np.asarray(out["v"].values, float),
            np.asarray(local["v"].values, float),
        )


# ---------------------------------------------------------------------------
# 4. message budget
# ---------------------------------------------------------------------------

class TestMessageBudget:
    def test_tpch_q5_messages_per_subtask_halved(self):
        workload, overrides = WORKLOADS["tpch_q5"]
        with make_session(parallel=True, **overrides) as session:
            workload(session)
            per = messages_per_subtask(session)
            n_subtasks = session.executor.report.n_subtasks
        assert n_subtasks > 0
        # The pre-batching data plane measured 39.23 messages/subtask on
        # this exact scenario; the composite endpoints must hold the
        # halved budget (currently ~18.8).
        assert per <= 19.62
