"""Unit tests for coloring-based graph-level fusion (Fig. 7) and
operator-level fusion planning."""

from repro.core import color_chunk_graph, fusion_groups, singleton_groups
from repro.core.operator import Operator
from repro.core.opfusion import plan_subtask, step_io_keys
from repro.graph import DAG, ChunkData, Subtask


class PlainOp(Operator):
    def execute(self, ctx):
        return None


class ElemOp(Operator):
    is_elementwise = True

    def execute(self, ctx):
        return None


def make_chunk(op_cls, inputs, idx):
    op = op_cls()
    return op.new_chunk(inputs, "tensor", (1,), (idx,))


def build(edges_spec):
    """Build a chunk graph from {name: [pred names]} (insertion order)."""
    graph = DAG()
    chunks = {}
    for i, (name, preds) in enumerate(edges_spec.items()):
        chunk = make_chunk(PlainOp, [chunks[p] for p in preds], i)
        chunks[name] = chunk
        graph.add_node(chunk)
        for p in preds:
            graph.add_edge(chunks[p], chunk)
    return graph, chunks


def groups_as_names(graph, chunks):
    groups = fusion_groups(graph)
    name_of = {chunk.key: name for name, chunk in chunks.items()}
    return [sorted(name_of[c.key] for c in group) for group in groups]


class TestColoring:
    def test_straight_line_fuses(self):
        graph, chunks = build({"a": [], "b": ["a"], "c": ["b"]})
        groups = groups_as_names(graph, chunks)
        assert groups == [["a", "b", "c"]]

    def test_independent_sources_get_distinct_colors(self):
        graph, chunks = build({"a": [], "b": []})
        color = color_chunk_graph(graph)
        assert color[chunks["a"].key] != color[chunks["b"].key]

    def test_join_of_different_colors_gets_new_color(self):
        graph, chunks = build({"a": [], "b": [], "c": ["a", "b"]})
        color = color_chunk_graph(graph)
        assert color[chunks["c"].key] not in (
            color[chunks["a"].key], color[chunks["b"].key]
        )
        groups = groups_as_names(graph, chunks)
        assert sorted(groups) == [["a"], ["b"], ["c"]]

    def test_diamond_reconverges_into_one_group(self):
        # a feeds b and c (both inherit a's color in step 2); d joins b+c.
        # b and c share a color so d inherits it; step 3 sees a's
        # successors all sharing a's color → no separation: all fused.
        graph, chunks = build({
            "a": [], "b": ["a"], "c": ["a"], "d": ["b", "c"]
        })
        groups = groups_as_names(graph, chunks)
        assert groups == [["a", "b", "c", "d"]]

    def test_step3_separates_mixed_branch(self):
        # Fig. 7 pattern: a -> b (same color chain) but a also feeds j,
        # which joins with another source s, so j has a different color.
        # Step 3 must split b away from a.
        graph, chunks = build({
            "a": [], "s": [], "b": ["a"], "j": ["a", "s"], "b2": ["b"],
        })
        color = color_chunk_graph(graph)
        assert color[chunks["b"].key] != color[chunks["a"].key]
        # the recolor propagates down b's chain
        assert color[chunks["b2"].key] == color[chunks["b"].key]
        groups = groups_as_names(graph, chunks)
        assert ["b", "b2"] in groups
        assert ["a"] in groups

    def test_groups_partition_nodes(self):
        graph, chunks = build({
            "a": [], "b": ["a"], "c": ["a"], "d": ["b"], "e": ["c", "d"],
        })
        groups = fusion_groups(graph)
        seen = [c.key for g in groups for c in g]
        assert sorted(seen) == sorted(c.key for c in graph.nodes())

    def test_same_color_requires_connectivity(self):
        # two disjoint straight lines must not share a subtask
        graph, chunks = build({"a": [], "b": ["a"], "x": [], "y": ["x"]})
        groups = groups_as_names(graph, chunks)
        assert sorted(groups) == [["a", "b"], ["x", "y"]]

    def test_singleton_groups(self):
        graph, chunks = build({"a": [], "b": ["a"]})
        groups = singleton_groups(graph)
        assert all(len(g) == 1 for g in groups)
        assert len(groups) == 2


class TestOperatorFusionPlan:
    def test_elementwise_chain_becomes_one_step(self):
        a = make_chunk(ElemOp, [], 0)
        b = make_chunk(ElemOp, [a], 1)
        c = make_chunk(ElemOp, [b], 2)
        subtask = Subtask([a, b, c])
        steps = plan_subtask(subtask, enable=True)
        assert len(steps) == 1
        assert [ch.key for ch in steps[0]] == [a.key, b.key, c.key]

    def test_disabled_gives_one_step_per_op(self):
        a = make_chunk(ElemOp, [], 0)
        b = make_chunk(ElemOp, [a], 1)
        subtask = Subtask([a, b])
        assert len(plan_subtask(subtask, enable=False)) == 2

    def test_non_elementwise_breaks_chain(self):
        a = make_chunk(ElemOp, [], 0)
        b = make_chunk(PlainOp, [a], 1)
        c = make_chunk(ElemOp, [b], 2)
        subtask = Subtask([a, b, c])
        steps = plan_subtask(subtask, enable=True)
        assert len(steps) == 3

    def test_branching_consumer_breaks_chain(self):
        a = make_chunk(ElemOp, [], 0)
        b = make_chunk(ElemOp, [a], 1)
        c = make_chunk(ElemOp, [a], 2)  # a has two consumers
        subtask = Subtask([a, b, c])
        steps = plan_subtask(subtask, enable=True)
        assert len(steps) == 3

    def test_output_chunk_not_fused_away(self):
        # a is also an output of the subtask → it must stay addressable
        a = make_chunk(ElemOp, [], 0)
        b = make_chunk(ElemOp, [a], 1)
        subtask = Subtask([a, b])
        subtask.output_keys = [a.key, b.key]
        steps = plan_subtask(subtask, enable=True)
        assert len(steps) == 2

    def test_step_io_keys_hide_intermediates(self):
        ext = make_chunk(PlainOp, [], 9)
        a = make_chunk(ElemOp, [ext], 0)
        b = make_chunk(ElemOp, [a], 1)
        inputs, outputs = step_io_keys([a, b])
        assert inputs == {ext.key}
        assert outputs == {b.key}  # a is an invisible intermediate
