"""Integration tests of the engine core: tiling ↔ execution switching,
the executor, sessions and result assembly."""

import numpy as np
import pytest

from repro.config import Config
from repro.core import Session, assemble
from repro.core.session import init_session, get_default_session, stop_session
from repro.errors import SessionError, TilingError
from repro import frame as pf
from repro.dataframe import from_frame
from repro.tensor import rand


@pytest.fixture
def session():
    cfg = Config()
    cfg.chunk_store_limit = 4000
    s = Session(cfg)
    yield s
    s.close()


def local_frame(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return pf.DataFrame({
        "k": rng.integers(0, 7, n),
        "v": rng.normal(size=n),
    })


class TestDynamicSwitching:
    def test_iloc_after_filter_yields(self, session):
        """The paper's Fig. 3(c) scenario: tiling must pause, execute the
        filtered chunks, and resume with real lengths."""
        local = local_frame(300)
        df = from_frame(local, session)
        filtered = df[df["v"] > 0]
        row = filtered.iloc[5]
        value = row.fetch()
        assert session.last_report.dynamic_yields >= 1
        expected = local[local["v"] > 0].iloc[5]
        assert value.to_list() == expected.to_list()

    def test_static_pipeline_never_yields(self, session):
        local = local_frame(300)
        df = from_frame(local, session)
        doubled = df["v"] * 2
        doubled.fetch()
        assert session.last_report.dynamic_yields == 0

    def test_dynamic_disabled_raises_on_required_yield(self):
        cfg = Config()
        cfg.chunk_store_limit = 2000
        cfg.dynamic_tiling = False
        s = Session(cfg)
        local = pf.DataFrame({"a": np.arange(100), "b": np.arange(100.0)})
        df = from_frame(local, s)
        # sort_values with dynamic off takes the static gather path
        out = df.sort_values("a").fetch()
        assert out["a"].to_list() == list(range(100))
        s.close()

    def test_report_counts_subtasks(self, session):
        df = from_frame(local_frame(300), session)
        (df["v"] + 1).fetch()
        assert session.last_report.n_subtasks > 0
        assert session.last_report.makespan > 0


class TestCaching:
    def test_second_fetch_hits_cache(self, session):
        df = from_frame(local_frame(200), session)
        result = df["v"] * 2
        first = result.fetch()
        subtasks_before = session.executor.report.n_subtasks
        second = result.fetch()
        assert session.executor.report.n_subtasks == subtasks_before
        assert first.equals(second)

    def test_derived_computation_reuses_chunks(self, session):
        df = from_frame(local_frame(200), session)
        base = df["v"] * 2
        base.fetch()
        n_before = session.executor.report.n_subtasks
        (base + 1).fetch()
        # only the +1 chunks run; the *2 chunks come from storage
        assert session.executor.report.n_subtasks > n_before

    def test_free_then_recompute(self, session):
        df = from_frame(local_frame(200), session)
        result = df["v"] * 2
        first = result.fetch()
        session.free(result.data)
        assert not session.is_materialized(result.data)
        second = result.fetch()
        assert first.equals(second)


class TestSessionLifecycle:
    def test_closed_session_rejects_execute(self):
        s = Session(Config())
        df = from_frame(local_frame(10), s)
        s.close()
        with pytest.raises(SessionError):
            s.execute(df.data)

    def test_fetch_untiled_raises(self, session):
        df = from_frame(local_frame(10), session)
        with pytest.raises(SessionError):
            session.fetch(df.data)

    def test_context_manager(self):
        with Session(Config()) as s:
            df = from_frame(local_frame(10), s)
            df.execute()
        assert s.closed

    def test_default_session_roundtrip(self):
        s = init_session()
        assert get_default_session() is s
        stop_session()
        s2 = get_default_session()
        assert s2 is not s
        stop_session()

    def test_session_actor_records_executions(self, session):
        df = from_frame(local_frame(10), session)
        df.execute()
        assert session._actor_ref.execution_count() >= 1


class TestAssemble:
    def test_scalar(self):
        assert assemble("scalar", {(): 7}) == 7

    def test_series_ordered(self):
        parts = {(1,): pf.Series([3, 4]), (0,): pf.Series([1, 2])}
        out = assemble("series", parts)
        assert out.to_list() == [1, 2, 3, 4]

    def test_dataframe_rows(self):
        parts = {
            (0, 0): pf.DataFrame({"a": [1]}),
            (1, 0): pf.DataFrame({"a": [2]}),
        }
        out = assemble("dataframe", parts)
        assert out["a"].to_list() == [1, 2]

    def test_tensor_2d_grid(self):
        parts = {
            (0, 0): np.ones((2, 2)), (0, 1): np.zeros((2, 1)),
            (1, 0): np.zeros((1, 2)), (1, 1): np.ones((1, 1)),
        }
        out = assemble("tensor", parts)
        assert out.shape == (3, 3)
        assert out[0, 0] == 1 and out[0, 2] == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            assemble("series", {})


class TestAblationSwitches:
    def _run(self, **overrides):
        cfg = Config()
        cfg.chunk_store_limit = 3000
        for key, value in overrides.items():
            setattr(cfg, key, value)
        s = Session(cfg)
        local = local_frame(400, seed=3)
        df = from_frame(local, s)
        out = df.groupby("k").agg({"v": "sum"}).fetch()
        expected = local.groupby("k").agg({"v": "sum"})
        assert np.allclose(
            np.asarray(out.sort_index()["v"].values, float),
            np.asarray(expected["v"].values, float),
        )
        report = s.last_report
        s.close()
        return report

    def test_results_identical_across_switches(self):
        self._run()
        self._run(graph_fusion=False)
        self._run(operator_fusion=False)
        self._run(dynamic_tiling=False)
        self._run(locality_scheduling=False)
        self._run(combine_stage=False)

    def test_fusion_reduces_subtasks(self):
        fused = self._run(graph_fusion=True)
        unfused = self._run(graph_fusion=False)
        assert fused.n_subtasks < unfused.n_subtasks
