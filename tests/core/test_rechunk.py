"""Unit tests for Algorithm 1 (auto rechunk)."""

import pytest

from repro.core import auto_rechunk, balanced_splits, rechunk_to_splits
from repro.errors import TilingError

MiB = 1024 * 1024


class TestPaperExample:
    def test_qr_tall_and_skinny_layout(self):
        """Section V-D worked example: shape (10000, 10000),
        dim_to_size={1: 10000}, 128 MiB limit ⇒ chunks of
        (1677, 10000) ... (1615, 10000)."""
        result = auto_rechunk((10000, 10000), {1: 10000}, 8, 128 * MiB)
        assert result[1] == [10000]
        assert result[0][:-1] == [1677] * 5
        assert result[0][-1] == 1615
        assert sum(result[0]) == 10000


class TestAutoRechunk:
    def test_unconstrained_square(self):
        result = auto_rechunk((100, 100), {}, 8, 80 * 100)
        # each chunk ~ sqrt(1000) per dim
        assert sum(result[0]) == 100
        assert sum(result[1]) == 100
        for extents in result.values():
            assert all(e >= 1 for e in extents)

    def test_every_chunk_respects_limit(self):
        limit = 4096
        result = auto_rechunk((500, 300), {}, 8, limit)
        max_chunk = max(result[0]) * max(result[1]) * 8
        # the heuristic may slightly overshoot only via the min extent 1
        assert max_chunk <= limit * 2

    def test_constrained_dim_repeated(self):
        result = auto_rechunk((10, 100), {0: 4}, 8, 10_000)
        assert result[0] == [4, 4, 2]

    def test_1d(self):
        result = auto_rechunk((1000,), {}, 8, 800)
        assert result[0] == [100] * 10

    def test_tiny_limit_gives_unit_chunks(self):
        result = auto_rechunk((5, 5), {1: 5}, 8, 1)
        assert result[0] == [1] * 5

    def test_zero_length_dimension(self):
        result = auto_rechunk((0,), {}, 8, 100)
        assert result[0] == []

    def test_invalid_constraint_rejected(self):
        with pytest.raises(TilingError):
            auto_rechunk((10,), {0: 20}, 8, 100)
        with pytest.raises(TilingError):
            auto_rechunk((10,), {3: 2}, 8, 100)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(TilingError):
            auto_rechunk((10,), {}, 0, 100)
        with pytest.raises(TilingError):
            auto_rechunk((10,), {}, 8, 0)

    def test_nsplits_packaging(self):
        nsplits = rechunk_to_splits((10, 4), {1: 4}, 8, 64)
        assert nsplits[1] == (4,)
        assert sum(nsplits[0]) == 10


class TestBalancedSplits:
    def test_even_pieces(self):
        assert balanced_splits(100, 250, 10) == [25, 25, 25, 25]

    def test_remainder_spread(self):
        splits = balanced_splits(10, 30, 10)
        assert splits == [3, 3, 2, 2]

    def test_single_chunk_when_small(self):
        assert balanced_splits(5, 1000, 10) == [5]

    def test_max_parts_cap(self):
        splits = balanced_splits(100, 10, 10, max_parts=3)
        assert len(splits) == 3 and sum(splits) == 100

    def test_empty(self):
        assert balanced_splits(0, 10, 10) == []
