"""Tests for the diagnostics/introspection helpers."""

import numpy as np
import pytest

from repro import diagnostics
from repro.config import Config
from repro.core import Session, build_tileable_graph
from repro.core.tiler import chunk_closure
from repro.dataframe import from_frame
from repro import frame as pf


@pytest.fixture
def session():
    cfg = Config()
    cfg.chunk_store_limit = 4_000
    s = Session(cfg)
    yield s
    s.close()


@pytest.fixture
def result(session):
    rng = np.random.default_rng(0)
    local = pf.DataFrame({"k": rng.integers(0, 4, 300),
                          "v": rng.normal(size=300)})
    df = from_frame(local, session)
    out = df.groupby("k").agg({"v": "sum"})
    out.execute()
    return out


class TestGraphExport:
    def test_tileable_graph_dot(self, session):
        df = from_frame(pf.DataFrame({"k": [1, 2], "v": [1.0, 2.0]}),
                        session)
        out = df.groupby("k").agg({"v": "sum"})  # NOT executed: full plan
        graph = build_tileable_graph([out.data])
        dot = diagnostics.graph_to_dot(graph)
        assert dot.startswith("digraph")
        assert "GroupByAgg" in dot
        assert "->" in dot

    def test_chunk_graph_dot(self, session, result):
        graph = chunk_closure(result.data.chunks, lambda key: False)
        dot = diagnostics.graph_to_dot(graph, name="chunks")
        assert "digraph chunks" in dot
        assert dot.count("[label=") == len(graph)

    def test_describe_tileable(self, result):
        text = diagnostics.describe_tileable(result.data)
        assert "GroupByAgg" in text
        assert "chunks:" in text

    def test_describe_untiled(self, session):
        df = from_frame(pf.DataFrame({"a": [1]}), session)
        assert "not tiled" in diagnostics.describe_tileable(df.data)

    def test_lineage(self, session):
        df = from_frame(pf.DataFrame({"a": [1.0, 2.0]}), session)
        chained = (df["a"] * 2).to_frame("b")
        text = diagnostics.lineage(chained.data)
        assert "Elementwise" in text
        assert "FromFrame" in text
        assert " <- " in text


class TestRuntimeReports:
    def test_band_timeline(self, session, result):
        text = diagnostics.band_timeline(session)
        assert "virtual makespan" in text
        assert "% busy" in text
        assert text.count("|") >= 2

    def test_memory_report(self, session, result):
        text = diagnostics.memory_report(session)
        assert "worker-0" in text
        assert "total spilled" in text

    def test_session_summary(self, session, result):
        text = diagnostics.session_summary(session)
        assert "subtasks" in text
        assert "dynamic-tiling switches" in text

    def test_timeline_without_work(self, session):
        assert "0.0000s" in diagnostics.band_timeline(session)

    def test_pressure_report(self, session, result):
        text = diagnostics.pressure_report(session)
        assert "admission wait" in text
        assert "re-tiling passes" in text

    def test_summary_includes_pressure_when_it_fired(self):
        cfg = Config()
        cfg.chunk_store_limit = 4_000
        cfg.cluster.memory_limit = 8 * 1024
        with Session(cfg) as tight:
            rng = np.random.default_rng(0)
            local = pf.DataFrame({"k": rng.integers(0, 4, 300),
                                  "v": rng.normal(size=300)})
            from_frame(local, tight).groupby("k").agg({"v": "sum"}).fetch()
            assert tight.executor.report.admission_wait_time > 0.0
            assert "memory pressure:" in diagnostics.session_summary(tight)


class TestServiceReport:
    def test_service_report_structure(self, session, result):
        text = diagnostics.service_report(session)
        assert "service plane:" in text
        assert "messages delivered:" in text
        assert "per service:" in text
        assert "service/storage" in text
        assert "service/scheduling" in text
        assert "->" in text  # at least one sender -> recipient edge

    def test_per_subtask_rate(self, session, result):
        text = diagnostics.service_report(session)
        n = session.executor.report.n_subtasks
        assert n > 0
        assert f"({n} subtasks)" in text

    def test_counts_match_log(self, session, result):
        # snapshot first: rendering the report itself delivers messages
        # (the session actor serves the executor/report reads).
        log = session.cluster.actor_system.log
        ((sender, recipient), _) = log.top_edges(1)[0]
        before = log.total_delivered
        text = diagnostics.service_report(session)
        assert f"messages delivered:  {before}" in text
        # the chattiest edge leads the edge listing.
        assert f"{sender} -> {recipient:24s}" in text

    def test_no_subtasks_no_rate_line(self):
        with Session(Config()) as fresh:
            text = diagnostics.service_report(fresh)
            assert "per subtask" not in text


class TestCacheReport:
    def test_cache_report_disabled(self, session, result):
        text = diagnostics.cache_report(session)
        assert "result cache:" in text
        assert "enabled:             False" in text
        assert "hits / misses:       0 / 0" in text

    def test_cache_report_after_warm_run(self):
        cfg = Config()
        cfg.chunk_store_limit = 4_000
        cfg.result_cache = True
        with Session(cfg) as session:
            rng = np.random.default_rng(0)
            local = pf.DataFrame({"k": rng.integers(0, 4, 300),
                                  "v": rng.normal(size=300)})
            for _ in range(2):
                from_frame(local, session).groupby("k").agg(
                    {"v": "sum"}).fetch()
            text = diagnostics.cache_report(session)
            stats = session.cache.stats_snapshot()
        assert "enabled:             True" in text
        assert f"hits / misses:       {stats['hits']} /" in text
        assert stats["hits"] > 0
        assert "bytes reused:" in text
        assert "chunks pruned:" in text
        # the per-session breakdown names the session that hit.
        assert session.session_id in text
