"""Tests for the column-pruning optimizer, including the cross-query
source invalidation rules."""

import numpy as np
import pytest

from repro.config import Config
from repro.core import Session, build_tileable_graph, prune_columns
from repro.dataframe import from_frame, read_parquet
from repro import frame as pf


@pytest.fixture
def session():
    cfg = Config()
    cfg.chunk_store_limit = 8_000
    s = Session(cfg)
    yield s
    s.close()


@pytest.fixture
def local():
    rng = np.random.default_rng(0)
    return pf.DataFrame({
        "a": rng.integers(0, 5, 500),
        "b": rng.normal(size=500),
        "c": rng.normal(size=500),
        "d": np.array([f"s{i % 3}" for i in range(500)], dtype=object),
    })


def source_pruned_columns(df):
    """The pruned column set recorded on a tileable's datasource op."""
    node = df.data
    while node.op is not None and node.inputs:
        node = node.inputs[0]
    return getattr(node.op, "pruned_columns", None)


class TestPruningPass:
    def test_projection_prunes_source(self, session, local):
        df = from_frame(local, session)
        result = df[["b"]]
        graph = build_tileable_graph([result.data])
        required = prune_columns(graph, [result.data])
        assert source_pruned_columns(result) == ["b"]

    def test_filter_keeps_mask_column(self, session, local):
        df = from_frame(local, session)
        result = df[df["a"] > 2][["b"]]
        graph = build_tileable_graph([result.data])
        prune_columns(graph, [result.data])
        pruned = source_pruned_columns(result)
        assert set(pruned) == {"a", "b"}

    def test_groupby_requires_keys_and_values(self, session, local):
        df = from_frame(local, session)
        result = df.groupby("a").agg({"c": "sum"})
        graph = build_tileable_graph([result.data])
        prune_columns(graph, [result.data])
        assert set(source_pruned_columns(result)) == {"a", "c"}

    def test_result_requires_everything(self, session, local):
        df = from_frame(local, session)
        graph = build_tileable_graph([df.data])
        required = prune_columns(graph, [df.data])
        assert required[df.data.key] is None  # the user sees it all

    def test_merge_requires_both_sides_keys(self, session, local):
        left = from_frame(local, session)
        dim = from_frame(pf.DataFrame({"a": [0, 1], "e": [1.0, 2.0]}),
                         session)
        result = left.merge(dim, on="a")[["b", "e"]]
        graph = build_tileable_graph([result.data])
        prune_columns(graph, [result.data])
        assert "a" in (source_pruned_columns(result) or ["a"])


class TestSourceInvalidation:
    def test_later_query_needing_more_columns_retiles(self, session, local,
                                                      tmp_path):
        path = tmp_path / "t.rpq"
        local.to_parquet(path)
        df = read_parquet(path, session=session)
        # query 1 prunes the scan down to column b
        df[["b"]].fetch()
        first_chunks = [c.key for c in df.data.chunks]
        # query 2 needs column c: the cached tiling is unusable
        out = df[["c"]].fetch()
        assert out.columns.to_list() == ["c"]
        assert out["c"].to_list() == local["c"].to_list()

    def test_subset_query_reuses_tiling(self, session, local, tmp_path):
        path = tmp_path / "t.rpq"
        local.to_parquet(path)
        df = read_parquet(path, session=session)
        df[["b", "c"]].fetch()
        chunks_before = [c.key for c in df.data.chunks]
        df[["b"]].fetch()  # subset of what is already read
        assert [c.key for c in df.data.chunks] == chunks_before

    def test_full_frame_after_pruned_query(self, session, local, tmp_path):
        path = tmp_path / "t.rpq"
        local.to_parquet(path)
        df = read_parquet(path, session=session)
        df[["b"]].fetch()
        full = df.fetch()
        assert full.columns.to_list() == local.columns.to_list()
        assert full["d"].to_list() == local["d"].to_list()

    def test_pruning_disabled_reads_everything(self, local, tmp_path):
        cfg = Config()
        cfg.column_pruning = False
        session = Session(cfg)
        path = tmp_path / "t.rpq"
        local.to_parquet(path)
        df = read_parquet(path, session=session)
        df[["b"]].fetch()
        assert source_pruned_columns(df) is None
        session.close()
