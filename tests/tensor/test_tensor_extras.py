"""Tests for tensor row slicing and map_blocks."""

import numpy as np
import pytest

from repro.config import Config
from repro.core import Session
from repro.errors import TilingError
from repro.tensor import tensor_from_numpy


@pytest.fixture
def session():
    cfg = Config()
    cfg.chunk_store_limit = 4096
    s = Session(cfg)
    yield s
    s.close()


class TestRowSlice:
    def test_middle_slice(self, session):
        a = np.arange(200.0).reshape(50, 4)
        t = tensor_from_numpy(a, session)
        np.testing.assert_array_equal(t[10:30].fetch(), a[10:30])

    def test_open_ended(self, session):
        a = np.arange(120.0).reshape(40, 3)
        t = tensor_from_numpy(a, session)
        np.testing.assert_array_equal(t[25:].fetch(), a[25:])
        np.testing.assert_array_equal(t[:7].fetch(), a[:7])

    def test_1d(self, session):
        a = np.arange(300.0)
        t = tensor_from_numpy(a, session)
        np.testing.assert_array_equal(t[100:250].fetch(), a[100:250])

    def test_crosses_chunk_boundaries(self, session):
        a = np.random.default_rng(0).random((400, 3))
        t = tensor_from_numpy(a, session).execute()
        assert len(t.data.chunks) > 1
        np.testing.assert_array_equal(t[37:311].fetch(), a[37:311])

    def test_empty_slice_rejected(self, session):
        t = tensor_from_numpy(np.zeros((10, 2)), session)
        with pytest.raises(TilingError):
            t[5:5].fetch()

    def test_strided_not_supported(self, session):
        t = tensor_from_numpy(np.zeros((10, 2)), session)
        with pytest.raises(NotImplementedError):
            t[::2]


class TestMapBlocks:
    def test_identity(self, session):
        a = np.random.default_rng(1).random((100, 4))
        t = tensor_from_numpy(a, session)
        np.testing.assert_array_equal(
            t.map_blocks(lambda b: b, out_cols=4).fetch(), a
        )

    def test_column_expansion(self, session):
        a = np.random.default_rng(2).random((80, 3))
        t = tensor_from_numpy(a, session)
        out = t.map_blocks(
            lambda b: np.hstack([b, np.ones((b.shape[0], 1))]), out_cols=4
        ).fetch()
        assert out.shape == (80, 4)
        np.testing.assert_array_equal(out[:, 3], 1.0)
        np.testing.assert_array_equal(out[:, :3], a)

    def test_rechunks_column_blocked_input(self, session):
        a = np.random.default_rng(3).random((60, 60))
        t = tensor_from_numpy(a, session).execute()
        # the source grid may be 2-D blocked; map_blocks must still see
        # full-width row blocks
        out = t.map_blocks(lambda b: b * 2, out_cols=60).fetch()
        np.testing.assert_allclose(out, a * 2)
