"""Equivalence tests for the distributed Tensor against NumPy."""

import numpy as np
import pytest

from repro.config import Config
from repro.core import Session
from repro.errors import TilingError
from repro.tensor import (
    arange,
    full,
    lstsq,
    ones,
    qr,
    rand,
    randn,
    tensor_from_numpy,
    zeros,
)


@pytest.fixture
def session():
    cfg = Config()
    cfg.chunk_store_limit = 4096  # tiny chunks: force real distribution
    s = Session(cfg)
    yield s
    s.close()


def dist(array, session):
    t = tensor_from_numpy(array, session)
    return t


class TestSources:
    def test_from_numpy_roundtrip(self, session):
        a = np.arange(24, dtype=np.float64).reshape(6, 4)
        np.testing.assert_array_equal(dist(a, session).fetch(), a)

    def test_big_matrix_multi_chunk(self, session):
        a = np.random.default_rng(0).random((60, 40))
        t = dist(a, session).execute()
        assert len(t.data.chunks) > 1
        np.testing.assert_array_equal(t.fetch(), a)

    def test_ones_zeros_full(self, session):
        np.testing.assert_array_equal(
            ones((30, 30), session=session).fetch(), np.ones((30, 30)))
        np.testing.assert_array_equal(
            zeros(50, session=session).fetch(), np.zeros(50))
        np.testing.assert_array_equal(
            full((3, 3), 7.5, session=session).fetch(), np.full((3, 3), 7.5))

    def test_arange(self, session):
        np.testing.assert_array_equal(
            arange(1000, session=session).fetch(), np.arange(1000))

    def test_rand_deterministic_seed(self, session):
        a = rand(40, 40, seed=5, session=session).fetch()
        b = rand(40, 40, seed=5, session=session).fetch()
        np.testing.assert_array_equal(a, b)
        assert a.shape == (40, 40)
        assert 0 <= a.min() and a.max() < 1

    def test_randn_distribution(self, session):
        a = randn(100, 100, seed=1, session=session).fetch()
        assert abs(a.mean()) < 0.05
        assert abs(a.std() - 1.0) < 0.05


class TestElementwise:
    def test_scalar_ops(self, session):
        a = np.random.default_rng(1).random((50, 30))
        t = dist(a, session)
        np.testing.assert_allclose(((t * 2 + 1) / 3).fetch(), (a * 2 + 1) / 3)

    def test_tensor_tensor_same_layout(self, session):
        a = np.random.default_rng(2).random((50, 30))
        t = dist(a, session)
        np.testing.assert_allclose((t + t * t).fetch(), a + a * a)

    def test_tensor_tensor_mismatched_layout_rechunks(self, session):
        rng = np.random.default_rng(3)
        a, b = rng.random((40, 40)), rng.random((40, 40))
        ta = dist(a, session)
        tb = dist(b, session).rechunk(((10, 10, 10, 10), (40,)))
        np.testing.assert_allclose((ta + tb).fetch(), a + b)

    def test_shape_mismatch_rejected(self, session):
        ta = dist(np.zeros((4, 4)), session)
        tb = dist(np.zeros((5, 4)), session)
        with pytest.raises(TilingError):
            (ta + tb).fetch()

    def test_neg_pow(self, session):
        a = np.random.default_rng(4).random(100)
        t = dist(a, session)
        np.testing.assert_allclose((-t).fetch(), -a)
        np.testing.assert_allclose((t ** 2).fetch(), a ** 2)


class TestRechunk:
    def test_rechunk_preserves_values(self, session):
        a = np.arange(100.0).reshape(10, 10)
        t = dist(a, session).rechunk(((3, 3, 4), (5, 5)))
        out = t.execute()
        assert len(out.data.chunks) == 6
        np.testing.assert_array_equal(out.fetch(), a)

    def test_rechunk_1d(self, session):
        a = np.arange(50.0)
        t = dist(a, session).rechunk(((20, 20, 10),))
        np.testing.assert_array_equal(t.fetch(), a)

    def test_bad_target_rejected(self, session):
        t = dist(np.zeros((10, 10)), session)
        with pytest.raises(TilingError):
            t.rechunk(((5, 6), (10,))).fetch()


class TestReductions:
    def test_full_sum_mean(self, session):
        a = np.random.default_rng(5).random((60, 40))
        t = dist(a, session)
        assert t.sum().fetch() == pytest.approx(a.sum())
        assert t.mean().fetch() == pytest.approx(a.mean())

    def test_full_min_max(self, session):
        a = np.random.default_rng(6).random((60, 40))
        t = dist(a, session)
        assert t.max().fetch() == pytest.approx(a.max())
        assert t.min().fetch() == pytest.approx(a.min())

    def test_axis_reductions(self, session):
        a = np.random.default_rng(7).random((60, 40))
        t = dist(a, session)
        np.testing.assert_allclose(t.sum(axis=0).fetch(), a.sum(axis=0))
        np.testing.assert_allclose(t.sum(axis=1).fetch(), a.sum(axis=1))
        np.testing.assert_allclose(t.mean(axis=0).fetch(), a.mean(axis=0))


class TestMatMul:
    def test_square(self, session):
        rng = np.random.default_rng(8)
        a, b = rng.random((40, 40)), rng.random((40, 40))
        out = (dist(a, session) @ dist(b, session)).fetch()
        np.testing.assert_allclose(out, a @ b)

    def test_rectangular_with_rechunk_alignment(self, session):
        rng = np.random.default_rng(9)
        a, b = rng.random((50, 30)), rng.random((30, 20))
        out = (dist(a, session) @ dist(b, session)).fetch()
        np.testing.assert_allclose(out, a @ b)

    def test_shape_mismatch(self, session):
        with pytest.raises(TilingError):
            (dist(np.zeros((4, 5)), session)
             @ dist(np.zeros((4, 5)), session)).fetch()


class TestQR:
    def test_reconstruction(self, session):
        a = np.random.default_rng(10).random((200, 20))
        q, r = qr(dist(a, session))
        qv, rv = q.fetch(), r.fetch()
        np.testing.assert_allclose(qv @ rv, a, atol=1e-10)

    def test_q_orthonormal_r_triangular(self, session):
        a = np.random.default_rng(11).random((150, 10))
        q, r = qr(dist(a, session))
        qv, rv = q.fetch(), r.fetch()
        np.testing.assert_allclose(qv.T @ qv, np.eye(10), atol=1e-10)
        np.testing.assert_allclose(rv, np.triu(rv), atol=1e-10)

    def test_auto_rechunk_produces_tall_skinny(self, session):
        """Dask needs a manual ``rechunk`` here (Listing 1); we must not."""
        a = np.random.default_rng(12).random((300, 8))
        t = dist(a, session)
        q, r = qr(t)
        q.execute()
        for chunk in q.data.chunks:
            assert chunk.shape[1] == 8  # every block spans all columns

    def test_wide_matrix_rejected(self, session):
        with pytest.raises(TilingError):
            qr(dist(np.zeros((5, 10)), session))[0].fetch()


class TestLstSq:
    def test_recovers_coefficients(self, session):
        rng = np.random.default_rng(13)
        x = rng.random((400, 6))
        beta = np.arange(1.0, 7.0)
        y = x @ beta
        got = lstsq(dist(x, session), dist(y, session)).fetch()
        np.testing.assert_allclose(got, beta, atol=1e-8)

    def test_noisy_fit_matches_numpy(self, session):
        rng = np.random.default_rng(14)
        x = rng.random((300, 4))
        y = x @ np.array([2.0, -1.0, 0.5, 3.0]) + rng.normal(0, 0.01, 300)
        got = lstsq(dist(x, session), dist(y, session)).fetch()
        expected, *_ = np.linalg.lstsq(x, y, rcond=None)
        np.testing.assert_allclose(got, expected, atol=1e-6)

    def test_dimension_checks(self, session):
        with pytest.raises(TilingError):
            lstsq(dist(np.zeros((10, 2)), session),
                  dist(np.zeros(9), session)).fetch()
