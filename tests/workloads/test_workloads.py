"""Tests for the workload generators and pipelines."""

import numpy as np
import pytest

from repro.frame import DataFrame as LocalFrame
from repro.workloads.census import census_pipeline, generate_census
from repro.workloads.plasticc import generate_plasticc, plasticc_pipeline
from repro.workloads.tpcxai import generate_uc10, uc10_pipeline
from repro.workloads.tpch import (
    ALL_QUERIES,
    QUERY_FEATURES,
    generate_tables,
    materialize,
)
from repro.workloads.tpch.dbgen import dataset_bytes, write_tables
from repro.workloads.tpch import schema


class TestDbgen:
    def test_all_tables_present(self):
        tables = generate_tables(sf=0.5, seed=0)
        assert set(tables) == set(schema.ROWS_PER_SF)

    def test_row_counts_scale(self):
        small = generate_tables(sf=0.5, seed=0)
        big = generate_tables(sf=2.0, seed=0)
        assert len(big["lineitem"]) == 4 * len(small["lineitem"])
        # fixed tables don't scale
        assert len(big["nation"]) == len(small["nation"]) == 25

    def test_foreign_keys_valid(self):
        tables = generate_tables(sf=1.0, seed=1)
        custkeys = set(tables["customer"]["c_custkey"].to_list())
        assert set(tables["orders"]["o_custkey"].to_list()) <= custkeys
        orderkeys = set(tables["orders"]["o_orderkey"].to_list())
        assert set(tables["lineitem"]["l_orderkey"].to_list()) <= orderkeys
        assert set(tables["nation"]["n_regionkey"].to_list()) <= set(range(5))

    def test_dates_ordered(self):
        tables = generate_tables(sf=1.0, seed=2)
        li = tables["lineitem"]
        ship = li["l_shipdate"].values
        receipt = li["l_receiptdate"].values
        assert bool(np.all(receipt > ship))

    def test_deterministic(self):
        a = generate_tables(sf=0.5, seed=3)
        b = generate_tables(sf=0.5, seed=3)
        assert a["orders"].equals(b["orders"])

    def test_skew_concentrates_keys(self):
        uniform = generate_tables(sf=1.0, seed=4, skew=0.0)
        skewed = generate_tables(sf=1.0, seed=4, skew=0.8)

        def top_share(frame):
            vc = frame["o_custkey"].value_counts()
            return vc.values[0] / vc.values.sum()

        assert top_share(skewed["orders"]) > 5 * top_share(uniform["orders"])

    def test_write_tables(self, tmp_path):
        tables = generate_tables(sf=0.5, seed=5)
        paths = write_tables(tables, tmp_path)
        assert len(paths) == 8
        from repro.frame import read_parquet

        back = read_parquet(paths["region"])
        assert back["r_name"].to_list() == schema.REGIONS

    def test_dataset_bytes_positive(self):
        tables = generate_tables(sf=0.5, seed=6)
        assert dataset_bytes(tables) > 100_000


class TestQueries:
    @pytest.fixture(scope="class")
    def tables(self):
        return generate_tables(sf=1.5, seed=1)

    def test_all_queries_have_features(self):
        assert set(QUERY_FEATURES) == set(ALL_QUERIES)
        assert all(QUERY_FEATURES[q] for q in ALL_QUERIES)

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_query_runs_locally(self, tables, name):
        result = materialize(ALL_QUERIES[name](tables))
        assert result is not None
        if hasattr(result, "columns"):
            assert len(result.columns) > 0

    def test_q1_aggregates_whole_table(self, tables):
        out = materialize(ALL_QUERIES["q1"](tables))
        # groups cover returnflag x linestatus combinations present
        assert 1 <= len(out) <= 6
        total_qty = out["l_quantity"].sum()
        li = tables["lineitem"]
        kept = li[li["l_shipdate"] <= np.datetime64("1998-09-02")]
        assert total_qty == pytest.approx(kept["l_quantity"].sum())

    def test_q6_matches_manual(self, tables):
        li = tables["lineitem"]
        mask = (
            (li["l_shipdate"].values >= np.datetime64("1994-01-01"))
            & (li["l_shipdate"].values < np.datetime64("1995-01-01"))
            & (li["l_discount"].values >= 0.05)
            & (li["l_discount"].values <= 0.07)
            & (li["l_quantity"].values < 24)
        )
        expected = float(
            (li["l_extendedprice"].values * li["l_discount"].values)[mask].sum()
        )
        assert ALL_QUERIES["q6"](tables) == pytest.approx(expected)

    def test_named_agg_queries_tagged(self):
        named = {q for q, f in QUERY_FEATURES.items()
                 if "groupby_named_agg" in f}
        assert named == {"q13", "q16", "q21"}


class TestPipelines:
    def test_uc10_skew_shape(self):
        tables = generate_uc10(n_customers=200, n_transactions=5_000,
                               skew=0.8, seed=0)
        counts = tables["transactions"]["customer_id"].value_counts()
        assert counts.values[0] / counts.values.sum() > 0.5

    def test_uc10_pipeline_output(self):
        tables = generate_uc10(n_customers=100, n_transactions=3_000, seed=1)
        out = materialize(uc10_pipeline(tables))
        assert out.columns.to_list() == [
            "customer_id", "amount", "over_limit", "night", "merchant",
        ]
        assert len(out) <= 100
        amounts = np.asarray(out["amount"].values, dtype=np.float64)
        assert bool(np.all(amounts[:-1] >= amounts[1:]))  # sorted desc

    def test_census_pipeline(self):
        tables = generate_census(n_rows=3_000, seed=2)
        out = materialize(census_pipeline(tables))
        assert len(out) <= 4 * 5  # region x education
        assert "real_income" in out.columns.to_list()
        assert out["person_id"].sum() > 0

    def test_census_handles_missing(self):
        tables = generate_census(n_rows=3_000, seed=3)
        assert tables["people"]["age"].isna().values.sum() > 0
        materialize(census_pipeline(tables))  # must not raise

    def test_plasticc_pipeline(self):
        tables = generate_plasticc(n_objects=200, points_per_object=12,
                                   seed=4)
        out = materialize(plasticc_pipeline(tables))
        assert 0 < len(out) <= 200
        assert "snr" in out.columns.to_list()
        assert "target" in out.columns.to_list()

    def test_pipelines_run_distributed(self):
        from repro.config import Config
        from repro.core import Session
        from repro.dataframe import from_frame

        cfg = Config()
        cfg.chunk_store_limit = 40_000
        session = Session(cfg)
        tables = generate_uc10(n_customers=100, n_transactions=8_000, seed=5)
        handles = {k: from_frame(v, session) for k, v in tables.items()}
        dist = materialize(uc10_pipeline(handles))
        local = materialize(uc10_pipeline(tables))
        assert len(dist) == len(local)
        np.testing.assert_allclose(
            np.asarray(dist["amount"].values, float),
            np.asarray(local["amount"].values, float),
        )
        session.close()
