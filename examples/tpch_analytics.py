"""Ad-hoc analytics: TPC-H queries on the distributed engine.

Generates a synthetic TPC-H dataset, writes it to the columnar format,
reads it back distributed, and runs a handful of representative queries,
printing per-query virtual makespans and engine statistics::

    python examples/tpch_analytics.py
"""

import os
import tempfile

from repro.config import default_config
from repro.core import Session
from repro.dataframe import read_parquet
from repro.workloads.tpch import ALL_QUERIES, generate_tables, write_tables
from repro.workloads.tpch.queries import materialize

SHOWCASE = ["q1", "q3", "q6", "q13", "q18"]
MiB = 1024 * 1024


def main() -> None:
    print("dbgen: generating TPC-H tables (sf=2)...")
    tables = generate_tables(sf=2.0, seed=42)

    with tempfile.TemporaryDirectory() as tmp:
        paths = write_tables(tables, tmp)
        total_mb = sum(os.path.getsize(p) for p in paths.values()) / MiB
        print(f"wrote {len(paths)} tables, {total_mb:.1f} MiB on disk")

        cfg = default_config()
        cfg.chunk_store_limit = 128 * 1024
        session = Session(cfg)
        handles = {
            name: read_parquet(path, session=session)
            for name, path in paths.items()
        }

        print(f"\n{'query':6s} {'rows':>8s} {'makespan':>10s} "
              f"{'subtasks':>9s} {'yields':>7s}")
        for name in SHOWCASE:
            t0 = session.cluster.clock.makespan
            result = materialize(ALL_QUERIES[name](handles))
            rep = session.last_report
            rows = len(result) if hasattr(result, "__len__") else 1
            print(f"{name:6s} {rows:8d} "
                  f"{session.cluster.clock.makespan - t0:9.4f}s "
                  f"{rep.n_subtasks:9d} {rep.dynamic_yields:7d}")

        print("\nQ1 result (pricing summary):")
        print(materialize(ALL_QUERIES["q1"](handles)))
        session.close()


if __name__ == "__main__":
    main()
