"""Scientific computing: tall-and-skinny QR and distributed OLS.

Shows the auto-rechunk mechanism (Algorithm 1): ``qr`` picks the
tall-and-skinny block layout itself — the manual ``rechunk`` Dask
requires (Listing 1 of the paper) is unnecessary::

    python examples/scientific_computing.py
"""

import numpy as np

import repro
import repro.numpy as rnp
from repro.core.rechunk import auto_rechunk


def main() -> None:
    repro.init(n_workers=4, chunk_store_limit=2 * 1024 * 1024)

    # ---- Algorithm 1 in isolation: the paper's worked example ----------
    layout = auto_rechunk((10_000, 10_000), {1: 10_000}, 8, 128 * 1024 * 1024)
    print("Algorithm 1 on the paper's example (10000x10000, 128 MiB):")
    print(f"  row blocks: {layout[0]}  (paper: 1677 x5, then 1615)")

    # ---- distributed QR -----------------------------------------------
    n, k = 30_000, 24
    a = rnp.random.rand(n, k, seed=3)
    q, r = rnp.linalg.qr(a)
    qv, rv = q.fetch(), r.fetch()
    print(f"\nQR of {n}x{k}:")
    print(f"  blocks chosen automatically: {len(q.data.chunks)} row blocks")
    print(f"  max |Q^T Q - I| = {np.abs(qv.T @ qv - np.eye(k)).max():.2e}")

    # ---- distributed ordinary least squares ----------------------------
    beta_true = np.linspace(0.5, 2.5, k)
    x = rnp.random.rand(n, k, seed=4)
    y_values = x.fetch() @ beta_true
    y = rnp.tensor_from_numpy(y_values)
    beta = rnp.linalg.lstsq(x, y).fetch()
    print(f"\nOLS on {n}x{k}: max coefficient error "
          f"{np.abs(beta - beta_true).max():.2e}")

    session = repro.get_default_session()
    print(f"virtual makespan so far: "
          f"{session.cluster.clock.makespan:.4f}s")
    repro.shutdown()


if __name__ == "__main__":
    main()
