"""Fraud-detection ETL on skewed transactions (the paper's UC10 story).

A tiny customer table joins a large transaction table whose keys
concentrate on a few hot customers. The example runs the same pipeline
twice — dynamic tiling on and off — and prints the virtual makespans, so
you can watch the broadcast-join decision pay off::

    python examples/fraud_detection_etl.py
"""

import repro
from repro.config import calibrate_cost_model, default_config
from repro.core import Session
from repro.dataframe import from_frame
from repro.workloads.tpcxai import generate_uc10, uc10_pipeline
from repro.workloads.tpch.queries import materialize

MiB = 1024 * 1024


def run_once(tables, dynamic: bool) -> tuple[float, int]:
    cfg = default_config()
    cfg.dynamic_tiling = dynamic
    cfg.chunk_store_limit = 192 * 1024
    cfg.cluster.n_workers = 2
    cfg.cluster.memory_limit = 128 * MiB
    # scale virtual bandwidths to the dataset so compute (and therefore
    # skew) dominates overheads, as it does at the paper's data sizes
    data_bytes = sum(frame.nbytes for frame in tables.values())
    calibrate_cost_model(cfg, data_bytes)
    session = Session(cfg)
    try:
        handles = {k: from_frame(v, session) for k, v in tables.items()}
        features = materialize(uc10_pipeline(handles))
        return session.cluster.clock.makespan, len(features)
    finally:
        session.close()


def main() -> None:
    print("generating skewed transactions (80% of rows on ~1% of keys)...")
    tables = generate_uc10(n_customers=300, n_transactions=60_000, skew=0.8)

    on, n_rows = run_once(tables, dynamic=True)
    off, _ = run_once(tables, dynamic=False)

    print(f"feature table rows:          {n_rows}")
    print(f"dynamic tiling ON  makespan: {on:.4f}s  (broadcast join)")
    print(f"dynamic tiling OFF makespan: {off:.4f}s  (static hash shuffle)")
    print(f"speedup from dynamic tiling: {off / on:.2f}x")
    print("\nThe static plan routes every hot-key row to one partition —")
    print("one band does almost all the work, exactly the skew failure")
    print("mode the paper reports for Dask and Modin on TPCx-AI UC10.")


if __name__ == "__main__":
    main()
