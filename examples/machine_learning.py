"""Distributed machine learning on the engine (the paper's Fig. 1 claim:
"machine learning libraries like scikit-learn can be distributed with
Xorbits' Tensor and DataFrame").

Pipeline: generate → split → scale → fit OLS and Ridge → evaluate →
cluster the residual space with K-Means. Every fit/transform is a
map-combine-reduce job over tensor blocks::

    python examples/machine_learning.py
"""

import numpy as np

import repro
import repro.numpy as rnp
from repro.learn import (
    KMeans,
    LinearRegression,
    Ridge,
    StandardScaler,
    mean_squared_error,
    r2_score,
    train_test_split,
)


def main() -> None:
    repro.init(n_workers=4, chunk_store_limit=256 * 1024)
    rng = np.random.default_rng(7)

    # ---- synthetic regression problem ------------------------------------
    n, k = 50_000, 8
    x_values = rng.normal(0, 2, (n, k))
    beta = np.linspace(-2, 2, k)
    y_values = x_values @ beta + 1.5 + rng.normal(0, 0.5, n)
    x = rnp.tensor_from_numpy(x_values)
    y = rnp.tensor_from_numpy(y_values)
    print(f"dataset: {n} rows x {k} features "
          f"({x_values.nbytes / 1e6:.1f} MB), distributed over "
          f"{len(x.execute().data.chunks)} blocks")

    x_train, x_test, y_train, y_test = train_test_split(x, y, 0.2)
    scaler = StandardScaler().fit(x_train)
    x_train_s = scaler.transform(x_train)
    x_test_s = scaler.transform(x_test)

    # ---- ordinary least squares -------------------------------------------
    ols = LinearRegression().fit(x_train_s, y_train)
    pred = ols.predict(x_test_s)
    print(f"\nOLS   r2={r2_score(y_test, pred):.4f} "
          f"mse={mean_squared_error(y_test, pred):.4f}")

    ridge = Ridge(alpha=10.0).fit(x_train_s, y_train)
    pred_r = ridge.predict(x_test_s)
    print(f"Ridge r2={r2_score(y_test, pred_r):.4f} "
          f"mse={mean_squared_error(y_test, pred_r):.4f}")

    # ---- clustering ----------------------------------------------------------
    blobs = np.vstack([
        rng.normal(center, 0.5, (4_000, 2))
        for center in [(0, 0), (6, 6), (0, 6), (6, 0)]
    ])
    rng.shuffle(blobs)
    km = KMeans(n_clusters=4, seed=0).fit(rnp.tensor_from_numpy(blobs))
    print(f"\nKMeans converged in {km.n_iter_} iterations, "
          f"inertia {km.inertia_:.0f}")
    print("centers (rounded):")
    for center in sorted(np.round(km.cluster_centers_, 1).tolist()):
        print(f"  {center}")

    session = repro.get_default_session()
    print(f"\ntotal virtual makespan: {session.cluster.clock.makespan:.3f}s")
    repro.shutdown()


if __name__ == "__main__":
    main()
