"""Quickstart: the paper's Listing 2, end to end.

Swap the import lines, call ``repro.init``, and run the same pandas/NumPy
program distributed::

    python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

import repro
import repro.numpy as rnp
import repro.pandas as rpd
from repro import frame as pf


def main() -> None:
    # init Xorbits-style runtime: a simulated 4-worker cluster
    repro.init(n_workers=4)

    # ---- array example: QR decomposition, auto-rechunked ------------------
    a = rnp.random.rand(2_000, 32, seed=0)
    q, r = rnp.linalg.qr(a)
    print("R factor (32x32), top-left corner:")
    print(r.fetch()[:3, :3])
    reconstruction = np.abs(q.fetch() @ r.fetch() - a.fetch()).max()
    print(f"max |QR - A| = {reconstruction:.2e}")

    # ---- dataframe example 1: groupby over a parquet file ------------------
    rng = np.random.default_rng(0)
    local = pf.DataFrame({
        "A": rng.integers(0, 10, 20_000),
        "B": rng.normal(size=20_000),
        "C": rng.integers(0, 1000, 20_000).astype(np.float64),
    })
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "data.rpq")
        local.to_parquet(path)

        df = rpd.read_parquet(path)
        print("\ngroupby('A').agg('min'):")
        print(df.groupby("A").agg({"B": "min", "C": "min"}))

        # ---- dataframe example 2: filter + iloc (iterative tiling) --------
        filtered = df[df["C"] < 500]
        print("\nfiltered.iloc[10] (dynamic tiling locates the chunk):")
        print(filtered.iloc[10])

    session = repro.get_default_session()
    rep = session.last_report
    print(f"\nlast run: {rep.n_subtasks} subtasks, "
          f"{rep.dynamic_yields} dynamic-tiling switches, "
          f"virtual makespan {rep.makespan:.4f}s")
    repro.shutdown()


if __name__ == "__main__":
    main()
