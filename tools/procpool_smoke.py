"""CI smoke for process-pool execution.

Runs TPC-H q1 and a groupby shuffle in thread mode and in process mode
and requires byte-identical results plus identical virtual makespans —
the determinism contract, checked end-to-end on a fresh interpreter.
A clean run must also observe zero worker-process crashes.

Run: ``PYTHONPATH=src python tools/procpool_smoke.py``
"""

from __future__ import annotations

import sys

import numpy as np

from repro import frame as pf
from repro.config import Config
from repro.core import Session
from repro.dataframe import from_frame
from repro.workloads.tpch import ALL_QUERIES, generate_tables
from repro.workloads.tpch.queries import materialize


def make_session(mode: str, chunk_limit: int) -> Session:
    cfg = Config()
    cfg.chunk_store_limit = chunk_limit
    cfg.parallel_execution = True
    cfg.parallel_min_subtasks = 2
    cfg.parallel_min_cores = 1
    cfg.execution_mode = mode
    return Session(cfg)


def tpch_q1(session: Session):
    tables = generate_tables(sf=0.5, seed=7)
    handles = {
        name: from_frame(frame, session) for name, frame in tables.items()
    }
    return materialize(ALL_QUERIES["q1"](handles))


def groupby_shuffle(session: Session):
    rng = np.random.default_rng(11)
    local = pf.DataFrame({
        "k": rng.integers(0, 200, 4_000),
        "v": rng.normal(size=4_000),
    })
    return from_frame(local, session).groupby("k").agg({"v": "sum"}).fetch()


WORKLOADS = [
    ("tpch_q1", tpch_q1, 64 * 1024),
    ("groupby_shuffle", groupby_shuffle, 4_000),
]


def run(name: str, workload, chunk_limit: int) -> int:
    outcomes = {}
    for mode in ("thread", "process"):
        with make_session(mode, chunk_limit) as session:
            value = workload(session)
            procpool = session.cluster._procpool
            crashes = procpool.crashes if procpool is not None else 0
            outcomes[mode] = (
                value, session.cluster.clock.makespan, crashes,
            )
    thread_value, thread_makespan, _ = outcomes["thread"]
    process_value, process_makespan, crashes = outcomes["process"]
    failures = 0
    if hasattr(thread_value, "equals"):
        same = bool(thread_value.equals(process_value))
    else:
        a, b = np.asarray(thread_value), np.asarray(process_value)
        same = a.shape == b.shape and a.tobytes() == b.tobytes()
    if not same:
        print(f"FAIL {name}: process result diverged from thread mode")
        failures += 1
    if thread_makespan != process_makespan:
        print(f"FAIL {name}: virtual makespan diverged "
              f"({thread_makespan} vs {process_makespan})")
        failures += 1
    if crashes:
        print(f"FAIL {name}: {crashes} worker crashes in a clean run")
        failures += 1
    if not failures:
        print(f"OK {name}: identical across thread/process, 0 crashes")
    return failures


def main() -> int:
    failures = sum(
        run(name, workload, chunk_limit)
        for name, workload, chunk_limit in WORKLOADS
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
