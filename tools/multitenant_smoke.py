"""CI smoke for the multi-tenant serving plane.

One end-to-end gate on a fresh interpreter: ten sessions of mixed
TPC-H + pipeline traffic run concurrently against one shared cluster,
and every tenant's results must come back bit-identical (``repr``) to a
solo run of the same traffic on a private cluster — including a noisy
tenant running under seeded chaos and a tight memory quota, whose
recovery activity must never leak into a neighbour's run.

Run: ``PYTHONPATH=src python tools/multitenant_smoke.py``
"""

from __future__ import annotations

import os
import sys
import threading

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro import frame as pf
from repro.cluster.cluster import ClusterState
from repro.config import Config
from repro.core import Session
from repro.dataframe import from_frame
from repro.workloads.tpch import ALL_QUERIES, generate_tables
from repro.workloads.tpch.queries import materialize

N_TENANTS = 10
TRAFFIC = ["q1", "q6", "q3", "q5", "pipe_groupby", "pipe_merge"]
CHAOS = {
    "seed": 20240806,
    "compute_fault_rate": 0.05,
    "chunk_loss_rate": 0.03,
    "memory_squeeze_rate": 0.05,
}


def make_config(chaos: bool = False) -> Config:
    cfg = Config()
    cfg.chunk_store_limit = 64 * 1024
    cfg.parallel_execution = False
    cfg.result_cache = True
    if chaos:
        for name, value in CHAOS.items():
            setattr(cfg.faults, name, value)
    return cfg


def run_item(session: Session, tables, item: str):
    if item == "pipe_groupby":
        rng = np.random.default_rng(11)
        local = pf.DataFrame({
            "k": rng.integers(0, 200, 4_000),
            "v": rng.normal(size=4_000),
        })
        return from_frame(local, session).groupby("k").agg(
            {"v": "sum"}).fetch()
    if item == "pipe_merge":
        rng = np.random.default_rng(5)
        left = pf.DataFrame({
            "k": rng.integers(0, 50, 1_500),
            "a": rng.normal(size=1_500),
        })
        right = pf.DataFrame({"k": np.arange(50), "b": rng.normal(size=50)})
        return from_frame(left, session).merge(
            from_frame(right, session), on="k").fetch()
    handles = {
        name: from_frame(frame, session) for name, frame in tables.items()
    }
    return materialize(ALL_QUERIES[item](handles))


def tenant_mix(i: int) -> list[str]:
    return [TRAFFIC[i % len(TRAFFIC)], TRAFFIC[(i + 1) % len(TRAFFIC)]]


def main() -> int:
    failures = 0
    tables = generate_tables(sf=0.1, seed=7)
    mixes = [tenant_mix(i) for i in range(N_TENANTS)]

    reference = []
    for mix in mixes:
        with Session(make_config()) as solo:
            reference.append([repr(run_item(solo, tables, it)) for it in mix])

    cluster = ClusterState(make_config())
    results: list[list[str] | None] = [None] * N_TENANTS
    recovery = [0] * N_TENANTS
    errors: list[str] = []

    def work(i: int):
        if i == 0:  # the noisy tenant: seeded chaos + tight quota
            session = Session(make_config(chaos=True), cluster=cluster,
                              tenant_memory_quota=0.25)
            # the smoke graphs are small; guarantee at least one fault
            # fires regardless of the seeded rates.
            session.faults.script_compute_fault(0, 0)
            session.faults.script_chunk_loss(1, 0)
        else:
            session = Session(cluster=cluster)
        try:
            out = []
            for item in mixes[i]:
                out.append(repr(run_item(session, tables, item)))
                recovery[i] += (session.last_report.retries
                                + session.last_report.recomputed_subtasks)
            results[i] = out
        except Exception as exc:  # noqa: BLE001 — reported below
            errors.append(f"tenant {i}: {exc!r}")
        finally:
            session.close()

    threads = [
        threading.Thread(target=work, args=(i,)) for i in range(N_TENANTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    cluster.shutdown()

    for err in errors:
        print(f"FAIL {err}")
        failures += 1
    for i in range(N_TENANTS):
        if results[i] is None:
            continue
        if results[i] != reference[i]:
            print(f"FAIL tenant {i}: results diverged from its solo run")
            failures += 1
    leaked = sum(recovery[1:])
    if leaked:
        print(f"FAIL clean tenants saw recovery activity ({leaked}) under "
              "the chaos tenant")
        failures += 1

    if failures == 0:
        print(f"OK multitenant smoke: {N_TENANTS} concurrent sessions, "
              f"mixed traffic, all bit-identical to solo; chaos tenant "
              f"recovery={recovery[0]}, neighbours clean")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
