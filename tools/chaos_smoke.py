"""CI smoke for actor-plane chaos: message faults must be invisible.

Runs TPC-H q5, TPC-H q1 and a groupby shuffle twice per execution mode
(serial, thread, process): once fault-free and once under 2% message
drop/delay/duplicate chaos plus one scripted service-actor kill and one
scripted runner death.  The chaos run must produce byte-identical
results and a bit-identical ``SimReport`` — at-least-once delivery over
idempotent endpoints, supervised restarts and lineage recovery are the
machinery under test, end-to-end on a fresh interpreter.

Run: ``PYTHONPATH=src python tools/chaos_smoke.py``
"""

from __future__ import annotations

import sys

import numpy as np

from repro import frame as pf
from repro.config import Config
from repro.core import Session
from repro.dataframe import from_frame
from repro.services import LIFECYCLE_UID, runner_uid
from repro.workloads.tpch import ALL_QUERIES, generate_tables
from repro.workloads.tpch.queries import materialize

CHAOS_SEED = 20240806
CHAOS_RATES = {"drop_rate": 0.02, "delay_rate": 0.02,
               "duplicate_rate": 0.02}

MODES = [
    ("serial", {"parallel_execution": False}),
    ("thread", {"parallel_execution": True}),
    ("process", {"parallel_execution": True, "execution_mode": "process"}),
]


def make_session(mode_overrides: dict, chunk_limit: int,
                 chaos: bool) -> Session:
    cfg = Config()
    cfg.chunk_store_limit = chunk_limit
    cfg.parallel_min_subtasks = 2
    cfg.parallel_min_cores = 1
    for name, value in mode_overrides.items():
        setattr(cfg, name, value)
    if chaos:
        cfg.message_faults.seed = CHAOS_SEED
        for name, value in CHAOS_RATES.items():
            setattr(cfg.message_faults, name, value)
    return Session(cfg)


def tpch_query(name: str, sf: float):
    def workload(session: Session):
        tables = generate_tables(sf=sf, seed=7)
        handles = {
            n: from_frame(frame, session) for n, frame in tables.items()
        }
        return materialize(ALL_QUERIES[name](handles))
    return workload


def groupby_shuffle(session: Session):
    rng = np.random.default_rng(11)
    local = pf.DataFrame({
        "k": rng.integers(0, 200, 4_000),
        "v": rng.normal(size=4_000),
    })
    return from_frame(local, session).groupby("k").agg({"v": "sum"}).fetch()


WORKLOADS = [
    ("tpch_q5", tpch_query("q5", 0.25), 64 * 1024),
    ("tpch_q1", tpch_query("q1", 0.25), 64 * 1024),
    ("groupby_shuffle", groupby_shuffle, 4_000),
]


def report_tuple(session: Session):
    report = session.executor.report
    return (
        report.makespan,
        report.total_compute_seconds,
        report.total_transfer_bytes,
        report.total_shuffle_bytes,
        report.n_subtasks,
        report.n_graph_nodes,
        report.retries,
        report.recomputed_subtasks,
        report.recovery_bytes,
        report.backoff_time,
        tuple(sorted(report.peak_memory.items())),
        tuple(sorted(report.band_busy.items())),
    )


def same_value(a, b) -> bool:
    if hasattr(a, "equals"):
        return bool(a.equals(b))
    a, b = np.asarray(a), np.asarray(b)
    return a.shape == b.shape and a.tobytes() == b.tobytes()


def run(name: str, workload, chunk_limit: int) -> int:
    failures = 0
    fired_by_mode = {}
    for mode, overrides in MODES:
        with make_session(overrides, chunk_limit, chaos=False) as clean:
            expected = workload(clean)
            baseline = report_tuple(clean)

        with make_session(overrides, chunk_limit, chaos=True) as session:
            band = session.cluster.bands[0].name
            session.faults.script_actor_kill(0, 0, LIFECYCLE_UID)
            session.faults.script_actor_kill(0, 1, runner_uid(band))
            result = workload(session)
            chaotic = report_tuple(session)
            chaos = session.cluster.actor_system.chaos
            fired = chaos.total_fired if chaos is not None else 0
            plane = session.cluster.supervision
            kills = plane.supervisor.total_kills
            restarts = plane.supervisor.total_restarts

        if not same_value(result, expected):
            print(f"FAIL {name}/{mode}: chaos result diverged")
            failures += 1
        elif chaotic != baseline:
            print(f"FAIL {name}/{mode}: SimReport diverged under chaos")
            failures += 1
        elif kills != 2 or restarts < 2:
            print(f"FAIL {name}/{mode}: expected 2 kills + restarts, "
                  f"got {kills}/{restarts}")
            failures += 1
        else:
            fired_by_mode[mode] = fired
            print(f"OK {name}/{mode}: bit-identical under chaos "
                  f"({fired} message faults, {restarts} restarts)")
    if len(set(fired_by_mode.values())) > 1:
        print(f"FAIL {name}: fault counts diverged across modes "
              f"({fired_by_mode})")
        failures += 1
    return failures


def main() -> int:
    failures = 0
    for name, workload, chunk_limit in WORKLOADS:
        failures += run(name, workload, chunk_limit)
    if failures:
        print(f"{failures} chaos smoke failure(s)")
        return 1
    print("chaos smoke passed: message faults and actor deaths invisible")
    return 0


if __name__ == "__main__":
    sys.exit(main())
