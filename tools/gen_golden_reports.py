#!/usr/bin/env python
"""Regenerate the engine golden reports.

Run from the repo root with the *reference* engine checked out:

    PYTHONPATH=src python tools/gen_golden_reports.py

Writes ``tests/core/goldens/engine_reports.json``: one fully-expanded
``SimReport``/``RunReport`` dump per scenario (tier-1 workloads x
serial/parallel x fault-free/chaos/memory-squeeze).  The service-plane
golden test (``tests/core/test_service_plane.py``) replays the same
scenarios and asserts bit-identical numbers, so only regenerate this
file when a PR *intentionally* changes simulated accounting — and say
so in the PR description.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from tests.core.golden_harness import (  # noqa: E402
    GOLDEN_PATH,
    run_scenario,
    scenarios,
)


def main() -> None:
    goldens: dict[str, dict] = {}
    for name, spec in scenarios():
        print(f"running {name} ...", flush=True)
        goldens[name] = run_scenario(spec)
    path = os.path.join(os.path.dirname(__file__), "..", GOLDEN_PATH)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as f:
        json.dump(goldens, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {len(goldens)} scenarios to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
