#!/usr/bin/env python
"""Import-graph lint: engine code must respect service boundaries.

The service-plane refactor moved every engine backend (storage tiers,
meta store, shuffle index, scheduler, memory pressure, lineage) behind
an owning service actor.  The architectural invariant is that *no
module outside a service's owner set imports its implementation class*
— everything else talks to the service through a duck-typed handle
(plain service object or ``ActorRef``), so the actor plane's message
log stays a faithful RPC trace.

This script walks ``src/repro`` with ``ast`` and fails (exit 1) on any
runtime import of a guarded class outside its allowlist.  Imports inside
``if TYPE_CHECKING:`` blocks are exempt: annotations are not calls.

A second rule guards the chunk-engine seam: outside ``repro/frame/``
and ``repro/engine/``, importing ``repro.frame`` (directly or via a
relative import) is an error.  Operator and service code must go
through ``repro.engine.local`` (the row-space API re-export) or an
engine handle, so a chunk backend can be swapped without touching the
planes above it.

Run from the repository root (CI runs it next to ruff)::

    python tools/check_service_boundaries.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

#: guarded class -> module paths (relative to src/, ``/``-separated)
#: allowed to import it at runtime.  A trailing ``/`` means the whole
#: subtree.  The services package may import everything: it *is* the
#: deployment layer.  ``repro/core/executor.py`` is the one sanctioned
#: assembly point outside it — legacy direct constructions of
#: ``GraphExecutor`` self-assemble plain services there.
ALLOWED = {
    # storage backends: the storage package owns its tiers and router.
    "StorageService": {"repro/storage/", "repro/services/"},
    "WorkerStorage": {"repro/storage/", "repro/services/"},
    "ShuffleManager": {"repro/storage/", "repro/services/"},
    # supervisor-side backends wrapped by service actors.
    "MetaService": {
        "repro/core/meta.py", "repro/core/__init__.py", "repro/services/",
    },
    "Scheduler": {
        "repro/core/scheduler.py", "repro/core/__init__.py",
        "repro/core/executor.py", "repro/services/",
    },
    "MemoryPressure": {"repro/core/memory_control.py", "repro/services/"},
    "RecoveryManager": {"repro/core/recovery.py", "repro/services/"},
    # the services themselves: constructed by deploy or the executor's
    # legacy self-assembly, never by client code.
    "SchedulingService": {"repro/services/", "repro/core/executor.py"},
    "LifecycleService": {"repro/services/", "repro/core/executor.py"},
    "ResultCacheService": {"repro/services/", "repro/core/executor.py"},
    "SubtaskRunner": {"repro/services/", "repro/core/executor.py"},
}

#: module subtrees allowed to import ``repro.frame`` directly; everyone
#: else must use ``repro.engine.local`` or an engine handle.
FRAME_ALLOWED_PREFIXES = ("repro/frame/", "repro/engine/")


def _module_parts(rel_path: str) -> list[str]:
    """Dotted package parts of the *package containing* ``rel_path``."""
    parts = rel_path.split("/")
    parts[-1] = parts[-1][: -len(".py")]
    # ``__init__`` lives *in* its package; a plain module lives one level
    # below its package — either way, drop exactly the final component.
    return parts[:-1]


def _resolve_import(rel_path: str, level: int, module: str | None) -> str:
    """Absolute dotted module targeted by an import statement."""
    if level == 0:
        return module or ""
    base = _module_parts(rel_path)
    if level > 1:
        base = base[: len(base) - (level - 1)]
    suffix = module.split(".") if module else []
    return ".".join(base + suffix)


def _is_frame(module: str) -> bool:
    return module == "repro.frame" or module.startswith("repro.frame.")


def _type_checking_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line ranges of ``if TYPE_CHECKING:`` bodies (exempt imports)."""
    spans = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if is_tc:
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


def _allowed(name: str, rel_path: str) -> bool:
    for entry in ALLOWED[name]:
        if entry.endswith("/"):
            if rel_path.startswith(entry):
                return True
        elif rel_path == entry:
            return True
    return False


def check_file(path: Path) -> list[str]:
    rel_path = path.relative_to(SRC_ROOT).as_posix()
    tree = ast.parse(path.read_text(), filename=str(path))
    exempt = _type_checking_spans(tree)
    violations = []
    frame_ok = rel_path.startswith(FRAME_ALLOWED_PREFIXES)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if any(lo <= node.lineno <= hi for lo, hi in exempt):
            continue
        if isinstance(node, ast.Import):
            if not frame_ok:
                for alias in node.names:
                    if _is_frame(alias.name):
                        violations.append(_frame_violation(
                            path, node.lineno, alias.name, rel_path))
            continue
        if not frame_ok:
            resolved = _resolve_import(rel_path, node.level, node.module)
            if _is_frame(resolved):
                violations.append(_frame_violation(
                    path, node.lineno, resolved, rel_path))
            elif resolved == "repro":
                for alias in node.names:
                    if alias.name == "frame":
                        violations.append(_frame_violation(
                            path, node.lineno, "repro.frame", rel_path))
        for alias in node.names:
            name = alias.name
            if name in ALLOWED and not _allowed(name, rel_path):
                violations.append(
                    f"{path.relative_to(SRC_ROOT.parent)}:{node.lineno}: "
                    f"{name} may only be imported by "
                    f"{sorted(ALLOWED[name])}, not {rel_path}"
                )
    return violations


def _frame_violation(path: Path, lineno: int, module: str,
                     rel_path: str) -> str:
    return (
        f"{path.relative_to(SRC_ROOT.parent)}:{lineno}: "
        f"{module} may only be imported under "
        f"{sorted(FRAME_ALLOWED_PREFIXES)}, not {rel_path} — "
        f"use repro.engine.local or an engine handle"
    )


def main() -> int:
    violations: list[str] = []
    for path in sorted((SRC_ROOT / "repro").rglob("*.py")):
        violations.extend(check_file(path))
    if violations:
        print("service boundary violations:")
        for line in violations:
            print(f"  {line}")
        return 1
    count = len(list((SRC_ROOT / 'repro').rglob('*.py')))
    print(f"service boundaries OK ({count} modules checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
