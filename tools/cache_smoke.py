"""CI smoke for the lineage-keyed result cache.

Two gates, checked end-to-end on a fresh interpreter:

1. **warm reuse** — TPC-H q1 run twice in one cached session: the warm
   run must skip at least half the subtasks and produce a byte-identical
   result;
2. **golden safety** — the 14 golden engine scenarios replayed with the
   cache *disabled* (the default) must stay bit-identical to the
   committed reports: the cache must be invisible when off.

Run: ``PYTHONPATH=src python tools/cache_smoke.py``
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.config import Config
from repro.core import Session
from repro.dataframe import from_frame
from repro.workloads.tpch import ALL_QUERIES, generate_tables
from repro.workloads.tpch.queries import materialize


def warm_q1_smoke() -> int:
    cfg = Config()
    cfg.chunk_store_limit = 64 * 1024
    cfg.parallel_execution = False
    cfg.result_cache = True
    failures = 0
    tables = generate_tables(sf=0.5, seed=7)
    with Session(cfg) as session:
        runs = []
        for _ in range(2):
            handles = {
                name: from_frame(frame, session)
                for name, frame in tables.items()
            }
            value = materialize(ALL_QUERIES["q1"](handles))
            runs.append((repr(value), session.last_report))
        (cold_repr, cold), (warm_repr, warm) = runs
    if warm_repr != cold_repr:
        print("FAIL warm q1: result diverged from the cold run")
        failures += 1
    if cold.n_subtasks == 0:
        print("FAIL warm q1: cold run executed no subtasks")
        failures += 1
    elif warm.n_subtasks > 0.5 * cold.n_subtasks:
        print(f"FAIL warm q1: only skipped "
              f"{cold.n_subtasks - warm.n_subtasks}/{cold.n_subtasks} "
              "subtasks (< 50%)")
        failures += 1
    if warm.cache_hit_chunks == 0:
        print("FAIL warm q1: no cache hits recorded")
        failures += 1
    if not failures:
        print(f"OK warm q1: {cold.n_subtasks} -> {warm.n_subtasks} "
              f"subtasks, {warm.cache_hit_chunks} chunks reused, "
              "identical result")
    return failures


def goldens_smoke() -> int:
    from tests.core.golden_harness import GOLDEN_PATH, run_scenario, scenarios

    with open(GOLDEN_PATH) as f:
        goldens = json.load(f)
    failures = 0
    for name, spec in scenarios():
        report = json.loads(json.dumps(run_scenario(spec)))
        if report != goldens[name]:
            print(f"FAIL golden {name}: report changed with cache disabled")
            failures += 1
    if not failures:
        print(f"OK goldens: {len(scenarios())} scenarios bit-identical "
              "with the cache disabled")
    return failures


def main() -> int:
    failures = warm_q1_smoke()
    failures += goldens_smoke()
    if failures:
        print(f"{failures} cache smoke failure(s)")
        return 1
    print("cache smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
