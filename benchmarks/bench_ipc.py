"""Serialization microbenchmark: inline pickle vs shared-memory exchange.

Times the process-pool wire protocol (``core/procpool.py``) on ndarray
payloads across chunk sizes, through a *real* spawned worker process —
the measured trip is encode, cross the process boundary, decode in the
child, re-encode the echo, decode in the parent.  Two paths:

- **inline** — protocol-5 out-of-band buffers copied into the pickle
  message, which then rides the executor's pipe both ways;
- **shm** — buffers packed into one ``multiprocessing.shared_memory``
  segment; only the segment name crosses the pipe and both sides
  reconstruct arrays zero-copy over the mapping.

The crossover justifies ``config.procpool_inline_threshold``: below it
the pipe copy is cheaper than a segment's syscalls, above it shm wins.

Writes ``BENCH_ipc.json`` (repo root and ``benchmarks/results/``).  Run
standalone::

    PYTHONPATH=src python benchmarks/bench_ipc.py
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from harness import format_table, save_bench_json  # noqa: E402

from repro.core.procpool import (  # noqa: E402
    _worker_initialize,
    decode_payload,
    encode_payload,
)

KiB = 1024
SIZES = [4 * KiB, 64 * KiB, 1024 * KiB, 16 * 1024 * KiB]
#: enough repetitions for stable numbers without minutes of runtime.
ROUNDS = {4 * KiB: 200, 64 * KiB: 100, 1024 * KiB: 30, 16 * 1024 * KiB: 6}

FORCE_INLINE = 1 << 62  # threshold no payload reaches
FORCE_SHM = 0           # threshold every payload reaches


def _echo(payload, threshold):
    """Child side: decode the request, re-encode it as the reply."""
    obj, in_shm = decode_payload(payload, child=True)
    out_payload, out_shm = encode_payload(obj, threshold, child=True)
    del obj  # drop the zero-copy views before unmapping their segment
    for shm in (in_shm, out_shm):
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # a straggler view; the OS unmaps at exit
                pass
    return out_payload


def _round_trip(executor, arr: np.ndarray, threshold: int) -> None:
    payload, shm = encode_payload({"chunk": arr}, threshold)
    reply = executor.submit(_echo, payload, threshold).result()
    if shm is not None:
        shm.unlink()
        shm.close()
    out, out_shm = decode_payload(reply, unlink=True)
    assert out["chunk"].nbytes == arr.nbytes
    del out
    if out_shm is not None:
        out_shm.close()


def run_ipc() -> list[dict]:
    executor = ProcessPoolExecutor(
        max_workers=1, mp_context=get_context("spawn"),
        initializer=_worker_initialize, initargs=(list(sys.path),),
    )
    rows: list[dict] = []
    try:
        for size in SIZES:
            raw = np.random.default_rng(size).bytes(size)
            arr = np.frombuffer(raw, dtype=np.uint8)
            rounds = ROUNDS[size]
            for path, threshold in (("inline", FORCE_INLINE),
                                    ("shm", FORCE_SHM)):
                _round_trip(executor, arr, threshold)  # warm the path
                start = time.perf_counter()
                for _ in range(rounds):
                    _round_trip(executor, arr, threshold)
                seconds = time.perf_counter() - start
                per_trip = seconds / rounds
                rows.append({
                    "size_bytes": size,
                    "path": path,
                    "rounds": rounds,
                    "seconds_per_round_trip": round(per_trip, 6),
                    "mib_per_second": round(
                        size / per_trip / (1024 * 1024), 1),
                })
    finally:
        executor.shutdown(wait=True)
    return rows


def save_and_render(rows: list[dict]) -> str:
    payload = {
        "benchmark": "ipc_inline_vs_shared_memory",
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }
    save_bench_json("BENCH_ipc.json", payload)

    by_size: dict[int, dict[str, dict]] = {}
    for row in rows:
        by_size.setdefault(row["size_bytes"], {})[row["path"]] = row
    table_rows = []
    for size, paths in sorted(by_size.items()):
        inline, shm = paths["inline"], paths["shm"]
        ratio = (inline["seconds_per_round_trip"]
                 / shm["seconds_per_round_trip"])
        table_rows.append([
            f"{size // KiB} KiB",
            f"{inline['seconds_per_round_trip'] * 1e6:.0f} us",
            f"{shm['seconds_per_round_trip'] * 1e6:.0f} us",
            f"{ratio:.2f}x",
        ])
    return format_table(
        "IPC echo round trip through a spawned worker",
        ["chunk size", "inline", "shm", "shm advantage"], table_rows,
        note=">1x means shm is faster. The crossover motivates "
             "config.procpool_inline_threshold.",
    )


def main() -> int:
    print(save_and_render(run_ipc()))
    return 0


def test_ipc_protocol_round_trips():
    """Pytest entry: both paths round-trip every size; numbers saved."""
    rows = run_ipc()
    save_and_render(rows)
    assert len(rows) == 2 * len(SIZES)


if __name__ == "__main__":
    raise SystemExit(main())
