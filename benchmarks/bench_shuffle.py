"""Shuffle data-plane benchmark: vectorized vs scalar partition kernels.

The partition step of every hash/range shuffle used to hash and route
rows one Python call at a time; the vectorized kernels
(``repro.dataframe.partition``) do the same work as a handful of NumPy
sweeps with bit-identical row routing. This bench measures real elapsed
seconds for shuffle-heavy merge and groupby pipelines under both paths
and asserts the results (and simulated shuffle bytes) are identical.

It also quantifies mapper-side combine: a low-cardinality groupby runs
with the combiner off and on, reporting the shuffle-byte reduction and
the rows dropped before the wire.

Writes ``benchmarks/results/BENCH_shuffle.json``. Run standalone::

    PYTHONPATH=src python benchmarks/bench_shuffle.py [--smoke]

``--smoke`` shrinks the inputs for CI: it checks parity and the combine
byte reduction but skips the wall-clock speedup bar (timing noise at
tiny scale says nothing).
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from harness import format_table, RESULTS_DIR, save_bench_json  # noqa: E402

import numpy as np  # noqa: E402

from repro.config import default_config  # noqa: E402
from repro.core.session import Session  # noqa: E402
from repro.dataframe import from_frame  # noqa: E402
from repro import frame as pf  # noqa: E402

RESULT_PATH = os.path.join(RESULTS_DIR, "BENCH_shuffle.json")

#: wall-clock bar for the vectorized partition kernels (acceptance).
TARGET_SPEEDUP = 1.5


def _shuffle_config(*, vectorized: bool, combine: bool = True,
                    shuffle_reduce: bool = False):
    cfg = default_config()
    cfg.cluster.n_workers = 4
    cfg.cluster.memory_limit = 512 * 1024 * 1024
    cfg.vectorized_shuffle = vectorized
    cfg.mapper_side_combine = combine
    if shuffle_reduce:
        # groupby picks shuffle-reduce during dynamic tiling once the
        # sampled size clears the threshold; make any size clear it.
        cfg.tree_reduce_threshold = 1
    else:
        # merges without dynamic tiling always take the static hash
        # shuffle plan (no broadcast fast path).
        cfg.dynamic_tiling = False
    return cfg


def _merge_tables(n_rows: int, str_keys: bool, seed: int = 29):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, n_rows // 4, n_rows)
    dim_keys = np.arange(n_rows // 4)
    if str_keys:
        keys = np.array([f"cust-{k:07d}" for k in keys], dtype=object)
        dim_keys = np.array(
            [f"cust-{k:07d}" for k in dim_keys], dtype=object
        )
    fact = pf.DataFrame({
        "k": keys,
        "v": rng.normal(size=n_rows),
        "w": rng.normal(size=n_rows),
    })
    dim = pf.DataFrame({
        "k": dim_keys,
        "label": rng.integers(0, 100, len(dim_keys)),
    })
    return fact, dim


def _run_merge(n_rows: int, str_keys: bool, *, vectorized: bool):
    fact, dim = _merge_tables(n_rows, str_keys)
    cfg = _shuffle_config(vectorized=vectorized)
    cfg.chunk_store_limit = max(fact.nbytes // 16, 8 * 1024)
    with Session(cfg) as session:
        left = from_frame(fact, session)
        right = from_frame(dim, session)
        joined = left.merge(right, on="k", how="inner")
        start = time.perf_counter()
        value = joined.fetch()
        seconds = time.perf_counter() - start
        return value, seconds, session.last_report.shuffle_bytes


def _run_groupby(n_rows: int, *, vectorized: bool):
    rng = np.random.default_rng(31)
    local = pf.DataFrame({
        "k": rng.integers(0, n_rows // 2, n_rows),  # high cardinality
        "v": rng.normal(size=n_rows),
        "w": rng.normal(size=n_rows),
    })
    cfg = _shuffle_config(vectorized=vectorized, shuffle_reduce=True)
    cfg.chunk_store_limit = max(local.nbytes // 16, 8 * 1024)
    with Session(cfg) as session:
        df = from_frame(local, session)
        agg = df.groupby("k").agg({"v": "mean", "w": "sum"})
        start = time.perf_counter()
        value = agg.fetch()
        seconds = time.perf_counter() - start
        return value, seconds, session.last_report.shuffle_bytes


def _run_combine_experiment(n_rows: int) -> dict:
    """Low-cardinality groupby with the mapper-side combiner off vs on."""
    rng = np.random.default_rng(37)
    local = pf.DataFrame({
        "k": rng.integers(0, 16, n_rows),
        "v": rng.normal(size=n_rows),
        "w": rng.normal(size=n_rows),
    })
    results = {}
    for combine in (False, True):
        cfg = _shuffle_config(vectorized=True, combine=combine,
                              shuffle_reduce=True)
        cfg.chunk_store_limit = max(local.nbytes // 16, 8 * 1024)
        with Session(cfg) as session:
            df = from_frame(local, session)
            value = df.groupby("k").agg({"v": "sum", "w": "max"}).fetch()
            report = session.last_report
            results[combine] = (
                value, report.shuffle_bytes, report.combine_dropped_rows
            )
    plain, bytes_off, _ = results[False]
    combined, bytes_on, dropped = results[True]
    if not combined.equals(plain):
        raise AssertionError("mapper-side combine changed the groupby result")
    if dropped <= 0 or bytes_on >= bytes_off:
        raise AssertionError(
            f"combine ineffective: {bytes_off} -> {bytes_on} bytes, "
            f"{dropped} rows dropped"
        )
    return {
        "workload": "groupby_low_cardinality",
        "shuffle_bytes_off": int(bytes_off),
        "shuffle_bytes_on": int(bytes_on),
        "reduction": round(bytes_off / bytes_on, 2),
        "combine_dropped_rows": int(dropped),
    }


def build_workloads(smoke: bool):
    n = 20_000 if smoke else 400_000
    return [
        ("merge_int_keys", lambda vec: _run_merge(n, False, vectorized=vec)),
        ("merge_str_keys", lambda vec: _run_merge(
            n // 2, True, vectorized=vec)),
        ("groupby_range_shuffle", lambda vec: _run_groupby(
            n, vectorized=vec)),
    ]


def run_shuffle_bench(smoke: bool) -> tuple[list[dict], dict]:
    rows: list[dict] = []
    repeats = 1 if smoke else 2  # best-of-n: damp timer noise at full scale
    for name, runner in build_workloads(smoke):
        scalar_value, scalar_seconds, scalar_bytes = runner(False)
        vector_value, vector_seconds, vector_bytes = runner(True)
        for _ in range(repeats - 1):
            _, seconds, _ = runner(False)
            scalar_seconds = min(scalar_seconds, seconds)
            _, seconds, _ = runner(True)
            vector_seconds = min(vector_seconds, seconds)
        if not vector_value.equals(scalar_value):
            raise AssertionError(f"{name}: vectorized result diverged")
        if vector_bytes != scalar_bytes:
            raise AssertionError(
                f"{name}: simulated shuffle bytes diverged "
                f"({scalar_bytes} vs {vector_bytes})"
            )
        speedup = scalar_seconds / vector_seconds if vector_seconds else 0.0
        rows.append({"workload": name, "mode": "scalar",
                     "seconds": round(scalar_seconds, 4), "speedup": 1.0})
        rows.append({"workload": name, "mode": "vectorized",
                     "seconds": round(vector_seconds, 4),
                     "speedup": round(speedup, 3)})
    combine = _run_combine_experiment(5_000 if smoke else 200_000)
    return rows, combine


def save_and_render(rows: list[dict], combine: dict, smoke: bool) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "benchmark": "shuffle_scalar_vs_vectorized",
        "cpu_count": os.cpu_count(),
        "smoke": smoke,
        "target_speedup": TARGET_SPEEDUP,
        "rows": rows,
        "mapper_side_combine": combine,
    }
    save_bench_json("BENCH_shuffle.json", payload)

    by_workload: dict[str, dict[str, dict]] = {}
    for row in rows:
        by_workload.setdefault(row["workload"], {})[row["mode"]] = row
    table_rows = [
        [name,
         f"{modes['scalar']['seconds']:.3f}s",
         f"{modes['vectorized']['seconds']:.3f}s",
         f"{modes['vectorized']['speedup']:.2f}x"]
        for name, modes in by_workload.items()
    ]
    table_rows.append([
        "combine (bytes)",
        f"{combine['shuffle_bytes_off']}",
        f"{combine['shuffle_bytes_on']}",
        f"{combine['reduction']:.2f}x less",
    ])
    return format_table(
        "Shuffle data plane: scalar vs vectorized partition kernels",
        ["workload", "scalar", "vectorized", "speedup"], table_rows,
        note=("row routing verified bit-identical across paths; combine row "
              f"drops {combine['combine_dropped_rows']} pre-shuffle rows"),
    )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    rows, combine = run_shuffle_bench(smoke)
    print(save_and_render(rows, combine, smoke))
    best = max(
        (row["speedup"] for row in rows if row["mode"] == "vectorized"),
        default=0.0,
    )
    if not smoke and best < TARGET_SPEEDUP:
        print(f"WARNING: best vectorized speedup {best:.2f}x below the "
              f"{TARGET_SPEEDUP}x target")
        return 1
    return 0


def test_shuffle_smoke(benchmark=None):
    """Pytest entry: parity + combine reduction at smoke scale."""
    rows, combine = run_shuffle_bench(smoke=True)
    save_and_render(rows, combine, smoke=True)
    assert combine["reduction"] > 1.0
    assert combine["combine_dropped_rows"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
