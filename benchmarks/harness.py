"""Shared helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper: it runs the
workloads through the engine profiles, prints the measured rows next to
the paper's published values, and saves the table under
``benchmarks/results/``. Absolute numbers differ (the substrate is a
simulator, the data laptop-scale); the *shape* — who fails, who wins, by
roughly what factor — is the reproduction target.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.baselines import Workload, make_engine
from repro.workloads.tpch import ALL_QUERIES, QUERY_FEATURES, generate_tables
from repro.workloads.tpch.dbgen import dataset_bytes

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MiB = 1024 * 1024


def save_bench_json(filename: str, payload: dict) -> None:
    """Persist a ``BENCH_*.json`` under ``benchmarks/results/`` *and* at
    the repo root — the perf-trajectory location the ROADMAP cites."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = json.dumps(payload, indent=2) + "\n"
    for path in (os.path.join(RESULTS_DIR, filename),
                 os.path.join(REPO_ROOT, filename)):
        with open(path, "w") as f:
            f.write(text)


@dataclass
class ScalePoint:
    """One TPC-H scale point mapped from the paper to laptop scale."""

    label: str            # the paper's name, e.g. "SF100"
    sf: float             # our dbgen scale factor
    n_workers: int
    memory_ratio: float   # per-worker memory as a multiple of dataset bytes
    chunk_fraction: float = 1 / 48  # chunk_store_limit as dataset fraction


#: the three scale points of Table I. Memory ratios are calibrated to the
#: paper's cluster-to-data proportions (see DESIGN.md §5).
SCALE_POINTS = {
    # memory_ratio = per-worker memory as a multiple of the in-memory
    # dataset, matching the paper's instance-to-data proportions
    # (256 GB r6i.8xlarge workers; parquet expands ~3.5x in memory):
    # SF10 ~ 256/45 per node, SF100 ~ 256/130, SF1000 ~ 256/1300.
    "SF10": ScalePoint("SF10", sf=0.5, n_workers=2, memory_ratio=5.0),
    "SF100": ScalePoint("SF100", sf=2.0, n_workers=4, memory_ratio=1.6),
    "SF1000": ScalePoint("SF1000", sf=4.0, n_workers=4, memory_ratio=0.2),
}


def tpch_workloads() -> list[Workload]:
    return [
        Workload(name, fn, QUERY_FEATURES[name])
        for name, fn in ALL_QUERIES.items()
    ]


def run_tpch_engine(engine_name: str, point: ScalePoint, tables,
                    data_bytes: int) -> dict[str, object]:
    """All 22 queries under one engine at one scale point."""
    engine = make_engine(engine_name)
    memory_limit = max(int(data_bytes * point.memory_ratio), 192 * 1024)
    chunk_limit = max(int(data_bytes * point.chunk_fraction), 16 * 1024)
    results = {}
    for workload in tpch_workloads():
        results[workload.name] = engine.run(
            workload, tables, n_workers=point.n_workers,
            memory_limit=memory_limit, chunk_store_limit=chunk_limit,
        )
    return results


def tpch_tables_for(point: ScalePoint, seed: int = 1):
    tables = generate_tables(sf=point.sf, seed=seed)
    return tables, dataset_bytes(tables)


def format_table(title: str, headers: list[str],
                 rows: list[list], note: str = "") -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ] if rows else [len(h) for h in headers]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def report(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")
