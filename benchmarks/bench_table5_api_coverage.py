"""Table V — API coverage rate over the 30-case benchmark.

Paper values::

    Xorbits 96.7%   Modin 96.7%   Dask 46.7%   PySpark 36.7%

Coverage is declared by the per-engine unsupported-feature matrices; on
top of that, every case Xorbits claims to support is *executed* on the
engine and must produce a result (so the headline number is backed by
running code, not a checklist).
"""

import pytest

from harness import format_table, report

from repro.baselines import (
    COVERAGE_CASES,
    coverage_table,
    make_fixture,
    supported_cases,
)
from repro.config import Config
from repro.core import Session
from repro.dataframe import from_frame
from repro.workloads.tpch.queries import materialize

PAPER = {"xorbits": 96.7, "modin": 96.7, "dask": 46.7, "pyspark": 36.7}


def run_coverage() -> dict:
    rates = coverage_table()
    # execute Xorbits's supported cases for real
    cfg = Config()
    cfg.chunk_store_limit = 8_000
    session = Session(cfg)
    fixture = make_fixture()
    handles = {k: from_frame(v, session) for k, v in fixture.items()}
    executed = 0
    for case in supported_cases("xorbits"):
        if case.fn is None:
            continue
        value = materialize(case.fn(handles))
        assert value is not None, case.name
        executed += 1
    session.close()
    return {"rates": rates, "executed": executed}


def test_table5_api_coverage(benchmark):
    out = benchmark.pedantic(run_coverage, rounds=1, iterations=1)
    rates = out["rates"]
    rows = [
        [engine, f"{rates[engine] * 100:.1f}%",
         f"{PAPER[engine]:.1f}%" if engine in PAPER else "-"]
        for engine in ("xorbits", "modin", "dask", "pyspark", "pandas")
    ]
    text = format_table(
        "Table V: API coverage rate (30 cases)",
        ["engine", "measured", "paper"], rows,
        note=f"{out['executed']} of Xorbits's supported cases executed "
             f"end-to-end on the engine.",
    )
    report("table5_api_coverage", text)

    for engine, paper_rate in PAPER.items():
        assert rates[engine] * 100 == pytest.approx(paper_rate, abs=0.1)
    assert len(COVERAGE_CASES) == 30
    assert out["executed"] >= 24
