"""Result-cache benchmark: warm-vs-cold TPC-H plus overlapping queries.

Measures what the lineage-keyed cache (``services/cache.py``) buys on
the workloads that motivated it:

- **warm vs cold** — TPC-H q1 and q5 run twice in one session with
  ``config.result_cache`` on; the warm run should prune nearly every
  subtask (the chains re-tile to the same structural identities) and
  beat the cold wall-clock by the recompute it skipped;
- **overlapping queries** — a sweep of distinct queries sharing lineage
  prefixes over one set of source tables, the multi-query session shape
  where a cache pays off without anyone re-running a whole query.

Every warm/overlapping result is verified identical (``repr``) to its
cold counterpart before a number is recorded.  Writes
``BENCH_cache.json`` (repo root and ``benchmarks/results/``).  Run
standalone::

    PYTHONPATH=src python benchmarks/bench_cache.py [--smoke]
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from harness import format_table, report, save_bench_json  # noqa: E402

from repro.config import Config  # noqa: E402
from repro.core import Session  # noqa: E402
from repro.dataframe import from_frame  # noqa: E402
from repro.workloads.tpch import ALL_QUERIES, generate_tables  # noqa: E402
from repro.workloads.tpch.queries import materialize  # noqa: E402

KiB = 1024

#: the overlapping-query sweep: queries over one shared table set. q1
#: and q6 share the lineitem scan; q3/q5 share customer-orders-lineitem
#: joins; the repeats at the end are full warm hits.
SWEEP = ["q1", "q6", "q3", "q5", "q1", "q5"]


def make_session(cache: bool) -> Session:
    cfg = Config()
    cfg.chunk_store_limit = 64 * KiB
    cfg.parallel_execution = False
    cfg.result_cache = cache
    return Session(cfg)


def run_query(session: Session, tables, name: str):
    handles = {
        tname: from_frame(frame, session) for tname, frame in tables.items()
    }
    t0 = time.perf_counter()
    value = materialize(ALL_QUERIES[name](handles))
    elapsed = time.perf_counter() - t0
    rep = session.last_report
    return value, elapsed, rep


def warm_vs_cold(sf: float, queries: list[str]) -> list[dict]:
    tables = generate_tables(sf=sf, seed=7)
    rows = []
    for name in queries:
        with make_session(cache=True) as session:
            cold_val, cold_s, cold_rep = run_query(session, tables, name)
            warm_val, warm_s, warm_rep = run_query(session, tables, name)
        assert repr(warm_val) == repr(cold_val), name
        skipped = cold_rep.n_subtasks - warm_rep.n_subtasks
        rows.append({
            "query": name,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
            "cold_subtasks": cold_rep.n_subtasks,
            "warm_subtasks": warm_rep.n_subtasks,
            "subtasks_skipped": skipped,
            "skip_fraction": skipped / max(cold_rep.n_subtasks, 1),
            "cache_hit_chunks": warm_rep.cache_hit_chunks,
            "bytes_reused": warm_rep.cache_reused_bytes,
        })
    return rows


def overlapping_sweep(sf: float) -> dict:
    tables = generate_tables(sf=sf, seed=7)
    # cold reference values, one fresh session per query.
    reference = {}
    for name in set(SWEEP):
        with make_session(cache=False) as session:
            value, _, _ = run_query(session, tables, name)
            reference[name] = repr(value)

    def sweep(cache: bool) -> tuple[float, int, list[dict]]:
        steps = []
        with make_session(cache=cache) as session:
            t0 = time.perf_counter()
            for name in SWEEP:
                value, elapsed, rep = run_query(session, tables, name)
                assert repr(value) == reference[name], name
                steps.append({
                    "query": name,
                    "seconds": elapsed,
                    "subtasks": rep.n_subtasks,
                    "cache_hit_chunks": rep.cache_hit_chunks,
                    "bytes_reused": rep.cache_reused_bytes,
                })
            total = time.perf_counter() - t0
            subtasks = sum(s["subtasks"] for s in steps)
        return total, subtasks, steps

    plain_s, plain_subtasks, _ = sweep(cache=False)
    cached_s, cached_subtasks, steps = sweep(cache=True)
    return {
        "queries": SWEEP,
        "uncached_seconds": plain_s,
        "cached_seconds": cached_s,
        "speedup": plain_s / cached_s if cached_s > 0 else float("inf"),
        "uncached_subtasks": plain_subtasks,
        "cached_subtasks": cached_subtasks,
        "subtasks_skipped": plain_subtasks - cached_subtasks,
        "cache_hit_chunks": sum(s["cache_hit_chunks"] for s in steps),
        "bytes_reused": sum(s["bytes_reused"] for s in steps),
        "steps": steps,
    }


def render(rows: list[dict], sweep_row: dict, sf: float) -> str:
    table_rows = [
        [row["query"],
         f"{row['cold_seconds']:.3f}s",
         f"{row['warm_seconds']:.3f}s",
         f"{row['speedup']:.1f}x",
         f"{row['cold_subtasks']} -> {row['warm_subtasks']}",
         f"{row['skip_fraction'] * 100:.0f}%",
         f"{row['bytes_reused'] / KiB:.0f} KiB"]
        for row in rows
    ]
    table_rows.append([
        "sweep",
        f"{sweep_row['uncached_seconds']:.3f}s",
        f"{sweep_row['cached_seconds']:.3f}s",
        f"{sweep_row['speedup']:.1f}x",
        f"{sweep_row['uncached_subtasks']} -> "
        f"{sweep_row['cached_subtasks']}",
        f"{sweep_row['subtasks_skipped'] / max(sweep_row['uncached_subtasks'], 1) * 100:.0f}%",
        f"{sweep_row['bytes_reused'] / KiB:.0f} KiB",
    ])
    return format_table(
        "Result cache: warm-vs-cold TPC-H and overlapping queries",
        ["workload", "cold", "warm", "speedup", "subtasks", "skipped",
         "reused"],
        table_rows,
        note=(f"sf={sf}; cold/warm = same session, second run; sweep = "
              f"{'-'.join(SWEEP)} in one cached session vs uncached. "
              "Every cached result verified identical to its cold run."),
    )


def main() -> int:
    smoke = "--smoke" in sys.argv[1:]
    sf = 0.25 if smoke else 1.0
    rows = warm_vs_cold(sf, ["q1", "q5"])
    sweep_row = overlapping_sweep(sf)
    payload = {
        "benchmark": "result_cache",
        "scale_factor": sf,
        "warm_vs_cold": rows,
        "overlapping_sweep": sweep_row,
    }
    save_bench_json("BENCH_cache.json", payload)
    report("BENCH_cache", render(rows, sweep_row, sf))
    q5 = next(row for row in rows if row["query"] == "q5")
    if q5["skip_fraction"] < 0.8:
        print(f"WARNING: warm q5 skipped only "
              f"{q5['skip_fraction'] * 100:.0f}% of subtasks (< 80%)")
        return 1
    if q5["speedup"] < 2.0:
        print(f"WARNING: warm q5 speedup {q5['speedup']:.2f}x (< 2x)")
        return 1
    return 0


def test_cache_bench(benchmark=None):
    """Pytest entry: warm runs skip work and match cold results."""
    rows = warm_vs_cold(0.25, ["q1", "q5"])
    sweep_row = overlapping_sweep(0.25)
    for row in rows:
        assert row["skip_fraction"] >= 0.8
        assert row["bytes_reused"] > 0
    assert sweep_row["subtasks_skipped"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
