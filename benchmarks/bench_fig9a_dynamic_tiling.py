"""Figure 9(a) — ablation: dynamic tiling on vs off.

Paper shape: enabling dynamic tiling speeds up merge-heavy TPC-H queries
dramatically — 7.08x on Q2 (four merges) and 10.59x on Q7 (nine merges).
With tiling off, merges fall back to static hash shuffles and groupbys to
blind tree-reduce; with it on, the engine samples real sizes, broadcasts
small sides, and range-partitions by observed keys.
"""

from harness import MiB, format_table, report

from repro.config import default_config
from repro.core import Session
from repro.dataframe import from_frame
from repro.workloads.tpch import ALL_QUERIES, generate_tables
from repro.workloads.tpch.dbgen import dataset_bytes
from repro.workloads.tpch.queries import materialize

# The paper ablates Q2 (four merges) and Q7 (nine merges) at SF1000,
# reporting 7.08x / 10.59x. At laptop scale Q2's tables (part, partsupp,
# supplier) are only a few hundred rows, so there is nothing for dynamic
# tiling to re-partition; the reproduction ablates the data-heavy
# merge/groupby queries instead, where the mechanism actually engages.
QUERIES = ["q7", "q3", "q5", "q9"]
PAPER = {"q7": 10.59}


def _run_query(name: str, tables, dynamic: bool, chunk_limit: int,
               memory_limit: int) -> float:
    cfg = default_config()
    cfg.dynamic_tiling = dynamic
    cfg.chunk_store_limit = chunk_limit
    cfg.tree_reduce_threshold = chunk_limit // 2
    cfg.cluster.memory_limit = memory_limit
    session = Session(cfg)
    try:
        handles = {k: from_frame(v, session) for k, v in tables.items()}
        materialize(ALL_QUERIES[name](handles))
        return session.cluster.clock.makespan
    finally:
        session.close()


def run_fig9a():
    tables = generate_tables(sf=3.0, seed=1, skew=0.5)
    data = dataset_bytes(tables)
    chunk_limit = max(data // 48, 16 * 1024)
    memory_limit = 512 * MiB
    out = {}
    for name in QUERIES:
        on = _run_query(name, tables, True, chunk_limit, memory_limit)
        off = _run_query(name, tables, False, chunk_limit, memory_limit)
        out[name] = (on, off)
    return out


def test_fig9a_dynamic_tiling(benchmark):
    out = benchmark.pedantic(run_fig9a, rounds=1, iterations=1)
    rows = []
    for name, (on, off) in out.items():
        speedup = off / on if on else float("inf")
        paper = f"{PAPER[name]:.2f}x" if name in PAPER else "-"
        rows.append([name, f"{on:.4f}s", f"{off:.4f}s",
                     f"{speedup:.2f}x", paper])
    text = format_table(
        "Figure 9(a): dynamic tiling ablation (skewed TPC-H)",
        ["query", "dy on", "dy off", "speedup", "paper"], rows,
        note="Measured on skewed data: static planning concentrates hot "
             "keys; dynamic tiling broadcasts / range-partitions instead.",
    )
    report("fig9a_dynamic_tiling", text)

    for name, (on, off) in out.items():
        assert off > on, f"dynamic tiling must help {name}"
    assert out["q7"][1] / out["q7"][0] > 1.5
