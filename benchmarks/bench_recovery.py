"""Fault-recovery benchmark: TPC-H Q5 under increasing chaos rates.

Runs the same query fault-free and with seeded injections at 1% and 5%
rates (compute faults, chunk drops, worker kills), asserting the result
stays byte-identical to the clean run, and reports what the recovery
machinery cost: retries, lineage recomputation, bytes restored, backoff
charged to the virtual clock, and the makespan inflation over the
fault-free baseline.

A second sweep runs *message-level* chaos — seeded drop/delay/duplicate
faults on the actor plane's token-carrying data messages — where the
contract is stronger: at-least-once delivery over idempotent endpoints
must keep the makespan bit-identical to the clean run (the transport
faults are wall-clock phenomena; no simulated number may move).

Writes ``benchmarks/results/BENCH_recovery.json`` with one row per fault
rate so future PRs can track the overhead trajectory. Run standalone::

    PYTHONPATH=src python benchmarks/bench_recovery.py [--smoke]
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from harness import MiB, format_table, RESULTS_DIR, save_bench_json  # noqa: E402

from repro.config import default_config  # noqa: E402
from repro.core.session import Session  # noqa: E402
from repro.dataframe import from_frame  # noqa: E402
from repro.workloads.tpch import generate_tables  # noqa: E402
from repro.workloads.tpch.queries import ALL_QUERIES, materialize  # noqa: E402

RESULT_PATH = os.path.join(RESULTS_DIR, "BENCH_recovery.json")

FAULT_SEED = 20240806

#: (label, compute fault rate, chunk loss rate, worker kill rate)
RATE_POINTS = [
    ("0%", 0.0, 0.0, 0.0),
    ("1%", 0.01, 0.01, 0.002),
    ("5%", 0.05, 0.03, 0.01),
]

#: (label, drop rate, delay rate, duplicate rate) for the message-chaos
#: sweep: transport faults absorbed by idempotent endpoints.
MESSAGE_POINTS = [
    ("msg 2%", 0.02, 0.02, 0.02),
    ("msg 10%", 0.10, 0.10, 0.10),
]


def run_q5(sf: float, compute_rate: float, loss_rate: float,
           kill_rate: float):
    cfg = default_config()
    cfg.cluster.n_workers = 4
    cfg.cluster.memory_limit = 256 * MiB
    cfg.chunk_store_limit = 64 * 1024
    cfg.faults.seed = FAULT_SEED
    cfg.faults.compute_fault_rate = compute_rate
    cfg.faults.chunk_loss_rate = loss_rate
    cfg.faults.worker_kill_rate = kill_rate
    session = Session(cfg)
    try:
        tables = generate_tables(sf=sf, seed=7)
        handles = {
            name: from_frame(frame, session)
            for name, frame in tables.items()
        }
        value = materialize(ALL_QUERIES["q5"](handles))
        report = session.executor.report
        return value, {
            "makespan": session.cluster.clock.makespan,
            "injected_events": len(session.cluster.faults.events),
            "retries": report.retries,
            "recomputed_subtasks": report.recomputed_subtasks,
            "recovery_bytes": report.recovery_bytes,
            "backoff_time": report.backoff_time,
        }
    finally:
        session.close()


def run_q5_message_chaos(sf: float, drop: float, delay: float,
                         duplicate: float):
    cfg = default_config()
    cfg.cluster.n_workers = 4
    cfg.cluster.memory_limit = 256 * MiB
    cfg.chunk_store_limit = 64 * 1024
    cfg.message_faults.seed = FAULT_SEED
    cfg.message_faults.drop_rate = drop
    cfg.message_faults.delay_rate = delay
    cfg.message_faults.duplicate_rate = duplicate
    session = Session(cfg)
    try:
        tables = generate_tables(sf=sf, seed=7)
        handles = {
            name: from_frame(frame, session)
            for name, frame in tables.items()
        }
        value = materialize(ALL_QUERIES["q5"](handles))
        report = session.executor.report
        chaos = session.cluster.actor_system.chaos
        snap = chaos.snapshot() if chaos is not None else {}
        return value, {
            "makespan": session.cluster.clock.makespan,
            "injected_events": (snap.get("dropped", 0)
                                + snap.get("delayed", 0)
                                + snap.get("duplicated", 0)),
            "retries": report.retries,
            "recomputed_subtasks": report.recomputed_subtasks,
            "recovery_bytes": report.recovery_bytes,
            "backoff_time": report.backoff_time,
        }
    finally:
        session.close()


def run_recovery(sf: float) -> list[dict]:
    rows: list[dict] = []
    baseline = None
    baseline_makespan = 0.0
    for label, compute_rate, loss_rate, kill_rate in RATE_POINTS:
        value, stats = run_q5(sf, compute_rate, loss_rate, kill_rate)
        if baseline is None:
            baseline = value
            baseline_makespan = stats["makespan"]
        elif not baseline.equals(value):
            raise AssertionError(
                f"q5 result diverged from fault-free run at {label} faults"
            )
        overhead = (
            stats["makespan"] / baseline_makespan if baseline_makespan else 0.0
        )
        rows.append({
            "fault_rate": label,
            "makespan": round(stats["makespan"], 4),
            "makespan_overhead": round(overhead, 3),
            "injected_events": stats["injected_events"],
            "retries": stats["retries"],
            "recomputed_subtasks": stats["recomputed_subtasks"],
            "recovery_bytes": stats["recovery_bytes"],
            "backoff_time": round(stats["backoff_time"], 4),
        })
    # message-level chaos: results AND makespan must match the clean run
    # exactly — idempotent endpoints absorb the transport faults.
    for label, drop, delay, duplicate in MESSAGE_POINTS:
        value, stats = run_q5_message_chaos(sf, drop, delay, duplicate)
        if not baseline.equals(value):
            raise AssertionError(
                f"q5 result diverged from fault-free run at {label}"
            )
        if stats["makespan"] != baseline_makespan:
            raise AssertionError(
                f"q5 makespan moved under message chaos at {label}: "
                f"{stats['makespan']} != {baseline_makespan}"
            )
        rows.append({
            "fault_rate": label,
            "makespan": round(stats["makespan"], 4),
            "makespan_overhead": 1.0,
            "injected_events": stats["injected_events"],
            "retries": stats["retries"],
            "recomputed_subtasks": stats["recomputed_subtasks"],
            "recovery_bytes": stats["recovery_bytes"],
            "backoff_time": round(stats["backoff_time"], 4),
        })
    return rows


def save_and_render(rows: list[dict], sf: float) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "benchmark": "fault_recovery_tpch_q5",
        "scale_factor": sf,
        "fault_seed": FAULT_SEED,
        "rows": rows,
    }
    save_bench_json("BENCH_recovery.json", payload)

    table_rows = [
        [row["fault_rate"],
         f"{row['makespan']:.3f}s",
         f"{row['makespan_overhead']:.2f}x",
         str(row["injected_events"]),
         str(row["retries"]),
         str(row["recomputed_subtasks"]),
         f"{row['backoff_time']:.3f}s"]
        for row in rows
    ]
    return format_table(
        "Fault recovery: TPC-H Q5 under seeded chaos",
        ["faults", "makespan", "overhead", "events", "retries",
         "recomputed", "backoff"],
        table_rows,
        note=(f"sf={sf}, seed={FAULT_SEED}; every faulted run's result is "
              "verified identical to the fault-free run; 'msg' rows are "
              "message-level chaos (drop/delay/duplicate), where the "
              "makespan is additionally bit-identical to fault-free."),
    )


def main() -> int:
    smoke = "--smoke" in sys.argv[1:]
    sf = 0.25 if smoke else 1.0
    rows = run_recovery(sf)
    print(save_and_render(rows, sf))
    faulted = [row for row in rows
               if row["fault_rate"] not in ("0%",)
               and not row["fault_rate"].startswith("msg")]
    if not any(row["injected_events"] for row in faulted):
        print("WARNING: no faults fired at non-zero rates; the chaos "
              "path was not exercised")
        return 1
    return 0


def test_recovery_overhead(benchmark=None):
    """Pytest entry: results survive chaos and recovery actually ran."""
    rows = run_recovery(0.25)
    save_and_render(rows, 0.25)
    five = next(row for row in rows if row["fault_rate"] == "5%")
    assert five["injected_events"] > 0
    assert five["retries"] + five["recomputed_subtasks"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
