"""Chunk-engine benchmark: row vs columnar backend.

Runs the same workloads under ``Config.chunk_engine = "row"`` and
``"columnar"`` and compares wall-clock and shuffle bytes:

- **TPC-H q1** — scan-heavy aggregation, little shuffle: the columnar
  backend must not regress it.
- **TPC-H q5** — the six-table join pipeline, shuffle over mostly
  numeric keys: encode/decode overhead shows up here if anywhere.
- **Low-cardinality string groupby** — the case the columnar layout
  exists for.  Mapper-side combine is *off*, so the shuffle genuinely
  carries repeated string keys; dictionary encoding ships each distinct
  key once per partition (4-byte codes per row) instead of one object
  per row.  This is where columnar must move strictly fewer bytes.

Writes ``BENCH_engine.json`` (repo root and ``benchmarks/results/``).
Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine.py [--smoke]
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from harness import format_table, save_bench_json  # noqa: E402

from repro import frame as pf  # noqa: E402
from repro.config import Config  # noqa: E402
from repro.core import Session  # noqa: E402
from repro.dataframe import from_frame  # noqa: E402
from repro.workloads.tpch import ALL_QUERIES, generate_tables  # noqa: E402
from repro.workloads.tpch.queries import materialize  # noqa: E402

ENGINES = ("row", "columnar")


def _session(engine: str, chunk_limit: int, **overrides) -> Session:
    cfg = Config()
    cfg.chunk_engine = engine
    cfg.chunk_store_limit = chunk_limit
    for name, value in overrides.items():
        setattr(cfg, name, value)
    return Session(cfg)


def _tpch_case(query: str, tables):
    def build(session: Session):
        handles = {
            name: from_frame(frame, session)
            for name, frame in tables.items()
        }
        return materialize(ALL_QUERIES[query](handles))
    return build


def _groupby_case(n_rows: int, n_keys: int):
    def build(session: Session):
        rng = np.random.default_rng(13)
        keys = np.array(
            [f"cust-{k:07d}" for k in rng.integers(0, n_keys, n_rows)],
            dtype=object,
        )
        local = pf.DataFrame({"k": keys, "v": rng.normal(size=n_rows)})
        return from_frame(local, session).groupby("k").agg(
            {"v": "sum"}).fetch()
    return build


def _run_case(name: str, build, engine: str, chunk_limit: int,
              **overrides) -> dict:
    with _session(engine, chunk_limit, **overrides) as session:
        start = time.perf_counter()
        build(session)
        wall = time.perf_counter() - start
        run = session.last_report
        return {
            "workload": name,
            "engine": engine,
            "wall_seconds": round(wall, 4),
            "shuffle_bytes": run.shuffle_bytes,
            "transferred_bytes": run.transferred_bytes,
            "n_subtasks": run.n_subtasks,
        }


def run_bench(smoke: bool) -> list[dict]:
    sf = 0.25 if smoke else 1.0
    tables = generate_tables(sf=sf, seed=7)
    n_rows = 6_000 if smoke else 24_000
    cases = [
        ("tpch_q1", _tpch_case("q1", tables), 64 * 1024, {}),
        ("tpch_q5", _tpch_case("q5", tables), 64 * 1024, {}),
        # combine off: the shuffle carries every repeated key, which is
        # the regime where a dictionary column pays for itself.
        ("groupby_lowcard_strings", _groupby_case(n_rows, n_keys=32),
         8_000, {"mapper_side_combine": False, "tree_reduce_threshold": 1}),
    ]
    rows = []
    for name, build, chunk_limit, overrides in cases:
        for engine in ENGINES:
            rows.append(_run_case(name, build, engine, chunk_limit,
                                  **overrides))
    return rows


def save_and_render(rows: list[dict], smoke: bool) -> str:
    payload = {
        "benchmark": "chunk_engine_row_vs_columnar",
        "smoke": smoke,
        "rows": rows,
    }
    save_bench_json("BENCH_engine.json", payload)

    by_case: dict[str, dict[str, dict]] = {}
    for row in rows:
        by_case.setdefault(row["workload"], {})[row["engine"]] = row
    table_rows = []
    for name, engines in by_case.items():
        row_r, col_r = engines["row"], engines["columnar"]
        ratio = (col_r["shuffle_bytes"] / row_r["shuffle_bytes"]
                 if row_r["shuffle_bytes"] else float("nan"))
        table_rows.append([
            name,
            f"{row_r['wall_seconds']:.3f}s",
            f"{col_r['wall_seconds']:.3f}s",
            f"{row_r['shuffle_bytes']:,}",
            f"{col_r['shuffle_bytes']:,}",
            f"{ratio:.2f}x" if ratio == ratio else "n/a",
        ])
    return format_table(
        "Chunk engine: row vs columnar",
        ["workload", "row wall", "col wall",
         "row shuffle B", "col shuffle B", "col/row bytes"],
        table_rows,
        note="<1x on the string groupby is the dictionary-encoding win; "
             "subtask topology is identical across engines by the seam's "
             "parity contract.",
    )


def main() -> int:
    smoke = "--smoke" in sys.argv[1:]
    print(save_and_render(run_bench(smoke), smoke))
    return 0


def test_engine_bench_smoke():
    """Pytest entry: columnar must move fewer shuffle bytes than row on
    the low-cardinality string groupby, with identical topology."""
    rows = run_bench(smoke=True)
    save_and_render(rows, smoke=True)
    by = {(r["workload"], r["engine"]): r for r in rows}
    gb_row = by[("groupby_lowcard_strings", "row")]
    gb_col = by[("groupby_lowcard_strings", "columnar")]
    assert gb_col["shuffle_bytes"] < gb_row["shuffle_bytes"]
    for name in ("tpch_q1", "tpch_q5", "groupby_lowcard_strings"):
        assert (by[(name, "row")]["n_subtasks"]
                == by[(name, "columnar")]["n_subtasks"]), name


if __name__ == "__main__":
    raise SystemExit(main())
