"""Multi-tenant serving benchmark: N concurrent sessions, one cluster.

Drives N tenants of mixed TPC-H + pipeline traffic against one shared
service plane (cluster-scoped Meta/Storage/Shuffle/Scheduling/Cache/
Lifecycle singletons, per-session ``SessionActor``s) and measures what
the multi-tenant plane buys over the pre-multi-tenant alternative —
serialized back-to-back execution, each tenant taking the whole cluster
solo with a cold cache:

- **aggregate throughput** — total virtual makespan of the concurrent
  run vs the sum of solo makespans (the serialized queue);
- **fairness** — the Jain index of per-tenant slowdowns (tenant's
  shared-run makespan over its solo makespan) across equal-weight
  tenants: 1.0 means everyone degraded identically;
- **per-tenant latency** — p50/p99 of tenant makespans (virtual time on
  each tenant's own frontier);
- **isolation** — every tenant's results verified bit-identical
  (``repr``) to its solo run, including a scenario where one tenant runs
  under seeded chaos and a tight memory quota while its neighbours stay
  clean.

Writes ``BENCH_multitenant.json`` (repo root and ``benchmarks/results``).
Run standalone::

    PYTHONPATH=src python benchmarks/bench_multitenant.py [--smoke]
        [--tenants N]
"""

from __future__ import annotations

import os
import sys
import threading
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from harness import format_table, report, save_bench_json  # noqa: E402

from repro import frame as pf  # noqa: E402
from repro.cluster.cluster import ClusterState  # noqa: E402
from repro.config import Config  # noqa: E402
from repro.core import Session  # noqa: E402
from repro.dataframe import from_frame  # noqa: E402
from repro.workloads.tpch import ALL_QUERIES, generate_tables  # noqa: E402
from repro.workloads.tpch.queries import materialize  # noqa: E402

KiB = 1024

#: chaos rates for the noisy-tenant scenario (the fault-recovery dial).
CHAOS = {
    "seed": 20240806,
    "compute_fault_rate": 0.05,
    "chunk_loss_rate": 0.03,
    "memory_squeeze_rate": 0.05,
}

#: the traffic mix tenants draw from, round-robin by tenant index:
#: TPC-H point queries plus two non-TPC-H pipeline shapes.
TRAFFIC = ["q1", "q6", "q3", "q5", "pipe_groupby", "pipe_merge"]


def make_config(**overrides) -> Config:
    cfg = Config()
    cfg.chunk_store_limit = 64 * KiB
    cfg.parallel_execution = False
    cfg.result_cache = True
    for name, value in overrides.items():
        setattr(cfg, name, value)
    return cfg


def pipe_groupby(session: Session, seed: int):
    rng = np.random.default_rng(seed)
    local = pf.DataFrame({
        "k": rng.integers(0, 200, 4_000),
        "v": rng.normal(size=4_000),
    })
    return from_frame(local, session).groupby("k").agg({"v": "sum"}).fetch()


def pipe_merge(session: Session, seed: int):
    rng = np.random.default_rng(seed)
    left = pf.DataFrame({
        "k": rng.integers(0, 50, 1_500),
        "a": rng.normal(size=1_500),
    })
    right = pf.DataFrame({"k": np.arange(50), "b": rng.normal(size=50)})
    return from_frame(left, session).merge(
        from_frame(right, session), on="k"
    ).fetch()


def run_item(session: Session, tables, item: str):
    if item == "pipe_groupby":
        return pipe_groupby(session, seed=11)
    if item == "pipe_merge":
        return pipe_merge(session, seed=5)
    handles = {
        name: from_frame(frame, session) for name, frame in tables.items()
    }
    return materialize(ALL_QUERIES[item](handles))


def tenant_mix(index: int, items_per_tenant: int) -> list[str]:
    return [
        TRAFFIC[(index + j) % len(TRAFFIC)] for j in range(items_per_tenant)
    ]


def run_mix(session: Session, tables, mix: list[str]) -> list[str]:
    return [repr(run_item(session, tables, item)) for item in mix]


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------

def solo_references(tables, mixes: list[list[str]]) -> list[dict]:
    """Each tenant's mix on a private cluster: the reference values and
    the serialized-queue cost (cold cache every time — pre-multi-tenant,
    clusters are not shared)."""
    out = []
    for mix in mixes:
        with Session(make_config()) as session:
            values = run_mix(session, tables, mix)
            out.append({
                "values": values,
                "makespan": session.executor.frontier
                if not session.owns_cluster else
                session.cluster.clock.makespan,
            })
    return out


def concurrent_run(tables, mixes: list[list[str]],
                   chaos_tenant: int | None = None,
                   **cfg_overrides) -> dict:
    """All tenants at once on one shared cluster."""
    cluster = ClusterState(make_config(**cfg_overrides))
    results: list[dict | None] = [None] * len(mixes)
    errors: list = []

    def work(i: int, mix: list[str]):
        if i == chaos_tenant:
            cfg = make_config(**cfg_overrides)
            for name, value in CHAOS.items():
                setattr(cfg.faults, name, value)
            session = Session(cfg, cluster=cluster,
                              tenant_memory_quota=0.25)
        else:
            session = Session(cluster=cluster)
        try:
            values = run_mix(session, tables, mix)
            results[i] = {
                "values": values,
                "makespan": session.executor.frontier,
                "retries": session.last_report.retries,
                "recomputed": session.last_report.recomputed_subtasks,
            }
        except Exception as exc:  # noqa: BLE001 — surfaced in the payload
            errors.append(f"tenant {i}: {exc!r}")
        finally:
            session.close()

    wall0 = time.perf_counter()
    threads = [
        threading.Thread(target=work, args=(i, mix))
        for i, mix in enumerate(mixes)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall0
    snapshot = cluster.services.scheduling.fair_share_snapshot() \
        if cluster.services is not None else {}
    makespan = cluster.clock.makespan
    cache = cluster.services.cache.stats_snapshot() \
        if cluster.services is not None else {}
    cluster.shutdown()
    return {
        "results": results,
        "errors": errors,
        "cluster_makespan": makespan,
        "wall_seconds": wall,
        "turns_granted": snapshot.get("turns_granted", {}),
        "cache_hits": cache.get("hits", 0),
        "cache_bytes_reused": cache.get("bytes_reused", 0),
    }


def sequential_shared_run(tables, mixes: list[list[str]]) -> dict:
    """Tenants one after another on one shared cluster (warm cache but
    no overlap) — isolates the concurrency win from the cache win."""
    cluster = ClusterState(make_config())
    results = []
    for i, mix in enumerate(mixes):
        session = Session(cluster=cluster)
        try:
            values = run_mix(session, tables, mix)
            results.append({
                "values": values,
                "makespan": session.executor.frontier,
            })
        finally:
            session.close()
    makespan = cluster.clock.makespan
    cluster.shutdown()
    return {"results": results, "cluster_makespan": makespan}


def jain_index(xs: list[float]) -> float:
    if not xs:
        return 1.0
    arr = np.asarray(xs, dtype=float)
    denom = len(arr) * float((arr ** 2).sum())
    return float(arr.sum()) ** 2 / denom if denom > 0 else 1.0


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run_benchmark(n_tenants: int, items_per_tenant: int,
                  sf: float) -> dict:
    tables = generate_tables(sf=sf, seed=7)
    mixes = [tenant_mix(i, items_per_tenant) for i in range(n_tenants)]

    solo = solo_references(tables, mixes)
    serialized_makespan = sum(ref["makespan"] for ref in solo)

    conc = concurrent_run(tables, mixes)
    seq_shared = sequential_shared_run(tables, mixes)

    identical = [
        conc["results"][i] is not None
        and conc["results"][i]["values"] == solo[i]["values"]
        for i in range(n_tenants)
    ]
    seq_identical = [
        seq_shared["results"][i]["values"] == solo[i]["values"]
        for i in range(n_tenants)
    ]
    makespans = [
        r["makespan"] for r in conc["results"] if r is not None
    ]
    slowdowns = [
        conc["results"][i]["makespan"] / solo[i]["makespan"]
        for i in range(n_tenants)
        if conc["results"][i] is not None and solo[i]["makespan"] > 0
    ]
    throughput_x = (
        serialized_makespan / conc["cluster_makespan"]
        if conc["cluster_makespan"] > 0 else float("inf")
    )

    # fairness: equal-weight tenants running *identical* work with the
    # cache off (cross-tenant hits would skew per-tenant cost); the
    # fair-share turnstile should hand out near-uniform makespans.
    fair_mixes = [["q1", "q6"] for _ in range(n_tenants)]
    fair = concurrent_run(tables, fair_mixes, result_cache=False)
    fair_makespans = [
        r["makespan"] for r in fair["results"] if r is not None
    ]
    jain_equal_work = jain_index(fair_makespans)

    # noisy-neighbour scenario: tenant 0 under seeded chaos and a tight
    # memory quota; every tenant must still match its solo values.
    chaos = concurrent_run(tables, mixes, chaos_tenant=0)
    chaos_identical = [
        chaos["results"][i] is not None
        and chaos["results"][i]["values"] == solo[i]["values"]
        for i in range(n_tenants)
    ]
    clean_recovery = sum(
        chaos["results"][i]["retries"] + chaos["results"][i]["recomputed"]
        for i in range(1, n_tenants)
        if chaos["results"][i] is not None
    )

    return {
        "n_tenants": n_tenants,
        "items_per_tenant": items_per_tenant,
        "scale_factor": sf,
        "traffic": TRAFFIC,
        "serialized_makespan": serialized_makespan,
        "concurrent_makespan": conc["cluster_makespan"],
        "sequential_shared_makespan": seq_shared["cluster_makespan"],
        "throughput_vs_serialized": throughput_x,
        "throughput_vs_sequential_shared": (
            seq_shared["cluster_makespan"] / conc["cluster_makespan"]
            if conc["cluster_makespan"] > 0 else float("inf")
        ),
        "tenant_makespan_p50": float(np.percentile(makespans, 50)),
        "tenant_makespan_p99": float(np.percentile(makespans, 99)),
        "jain_fairness_equal_work": jain_equal_work,
        "fair_scenario_makespans": fair_makespans,
        "jain_fairness_slowdown": jain_index(slowdowns),
        "jain_fairness_makespan": jain_index(makespans),
        "slowdowns": slowdowns,
        "turns_granted": conc["turns_granted"],
        "cache_hits": conc["cache_hits"],
        "cache_bytes_reused": conc["cache_bytes_reused"],
        "wall_seconds_concurrent": conc["wall_seconds"],
        "all_identical_to_solo": all(identical),
        "sequential_identical_to_solo": all(seq_identical),
        "errors": conc["errors"],
        "chaos_scenario": {
            "chaos_tenant": 0,
            "all_identical_to_solo": all(chaos_identical),
            "chaos_tenant_recovery": (
                (chaos["results"][0]["retries"]
                 + chaos["results"][0]["recomputed"])
                if chaos["results"][0] is not None else None
            ),
            "clean_tenants_recovery": clean_recovery,
            "errors": chaos["errors"],
        },
    }


def render(row: dict) -> str:
    rows = [
        ["tenants", str(row["n_tenants"])],
        ["serialized (solo queue)", f"{row['serialized_makespan']:.3f}s"],
        ["sequential shared", f"{row['sequential_shared_makespan']:.3f}s"],
        ["concurrent shared", f"{row['concurrent_makespan']:.3f}s"],
        ["throughput vs serialized",
         f"{row['throughput_vs_serialized']:.2f}x"],
        ["throughput vs seq-shared",
         f"{row['throughput_vs_sequential_shared']:.2f}x"],
        ["tenant makespan p50/p99",
         f"{row['tenant_makespan_p50']:.3f}s / "
         f"{row['tenant_makespan_p99']:.3f}s"],
        ["Jain fairness (equal work)",
         f"{row['jain_fairness_equal_work']:.3f}"],
        ["Jain fairness (mixed, slowdown)",
         f"{row['jain_fairness_slowdown']:.3f}"],
        ["cache hits / bytes reused",
         f"{row['cache_hits']} / {row['cache_bytes_reused'] / KiB:.0f} KiB"],
        ["bit-identical to solo", str(row["all_identical_to_solo"])],
        ["bit-identical under chaos tenant",
         str(row["chaos_scenario"]["all_identical_to_solo"])],
        ["clean tenants' recovery under chaos",
         str(row["chaos_scenario"]["clean_tenants_recovery"])],
    ]
    return format_table(
        "Multi-tenant serving: N concurrent sessions on one shared cluster",
        ["metric", "value"],
        rows,
        note=("times are virtual (simulated); serialized = each tenant "
              "solo on a private cluster back-to-back (cold cache), the "
              "pre-multi-tenant queue. Values verified via repr against "
              "each tenant's solo run."),
    )


def main() -> int:
    smoke = "--smoke" in sys.argv[1:]
    n_tenants = 4 if smoke else 10
    if "--tenants" in sys.argv[1:]:
        n_tenants = int(sys.argv[sys.argv.index("--tenants") + 1])
    items = 1 if smoke else 2
    sf = 0.1 if smoke else 0.25

    row = run_benchmark(n_tenants, items, sf)
    payload = {"benchmark": "multitenant", **row}
    save_bench_json("BENCH_multitenant.json", payload)
    report("BENCH_multitenant", render(row))

    failed = False
    if row["errors"] or row["chaos_scenario"]["errors"]:
        print(f"WARNING: tenant errors: "
              f"{row['errors'] + row['chaos_scenario']['errors']}")
        failed = True
    if not row["all_identical_to_solo"]:
        print("WARNING: concurrent tenant results differ from solo runs")
        failed = True
    if not row["chaos_scenario"]["all_identical_to_solo"]:
        print("WARNING: results differ from solo under the chaos tenant")
        failed = True
    if row["chaos_scenario"]["clean_tenants_recovery"] != 0:
        print("WARNING: a clean tenant saw recovery activity under a "
              "neighbour's chaos")
        failed = True
    if row["throughput_vs_serialized"] < 1.5:
        print(f"WARNING: aggregate throughput "
              f"{row['throughput_vs_serialized']:.2f}x (< 1.5x)")
        failed = True
    if row["jain_fairness_equal_work"] < 0.9:
        print(f"WARNING: Jain fairness "
              f"{row['jain_fairness_equal_work']:.3f} (< 0.9)")
        failed = True
    return 1 if failed else 0


def test_multitenant_bench(benchmark=None):
    """Pytest entry: small fleet, same acceptance dials."""
    row = run_benchmark(4, 1, 0.1)
    assert not row["errors"]
    assert row["all_identical_to_solo"]
    assert row["chaos_scenario"]["all_identical_to_solo"]
    assert row["chaos_scenario"]["clean_tenants_recovery"] == 0
    assert row["jain_fairness_equal_work"] >= 0.9


if __name__ == "__main__":
    raise SystemExit(main())
