"""Benchmark-suite configuration.

Heavy suites run once per benchmark (pedantic, one round): the interesting
output is the regenerated paper table, not wall-clock statistics.
"""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))
