"""Table II — why engines fail TPC-H at the largest scale.

Paper values (SF1000)::

    Reason             PySpark  Dask  Modin
    API Compatibility  3        0     0
    Hang               0        2     0
    OOM or Killed      1        3     22
    Total              4        5     22

The reproduction classifies every failure by exception type — the same
taxonomy the failure paths of the engine profiles produce: unsupported
API features, memory-pressure hangs (Dask's pausing workers), and
out-of-memory kills.
"""

from harness import (
    SCALE_POINTS,
    format_table,
    report,
    run_tpch_engine,
    tpch_tables_for,
)

PAPER = {
    "pyspark": {"api": 3, "hang": 0, "oom": 1},
    "dask": {"api": 0, "hang": 2, "oom": 3},
    "modin": {"api": 0, "hang": 0, "oom": 22},
}

ENGINES = ["pyspark", "dask", "modin"]
REASONS = ["api", "hang", "oom"]


def run_table2() -> dict:
    point = SCALE_POINTS["SF1000"]
    tables, data_bytes = tpch_tables_for(point)
    counts = {engine: {reason: 0 for reason in REASONS} for engine in ENGINES}
    for engine in ENGINES:
        results = run_tpch_engine(engine, point, tables, data_bytes)
        for result in results.values():
            if result.failed:
                counts[engine][result.status] = (
                    counts[engine].get(result.status, 0) + 1
                )
    return counts


def test_table2_failure_reasons(benchmark):
    counts = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    label = {"api": "API Compatibility", "hang": "Hang",
             "oom": "OOM or Killed"}
    rows = []
    for reason in REASONS:
        row = [label[reason]]
        for engine in ENGINES:
            row.append(
                f"{counts[engine].get(reason, 0)} "
                f"(paper {PAPER[engine][reason]})"
            )
        rows.append(row)
    totals = ["Total"]
    for engine in ENGINES:
        got = sum(counts[engine].values())
        paper = sum(PAPER[engine].values())
        totals.append(f"{got} (paper {paper})")
    rows.append(totals)
    text = format_table(
        "Table II: TPC-H SF1000 failure reasons (measured vs paper)",
        ["Reason", *ENGINES], rows,
    )
    report("table2_failure_reasons", text)

    # shape: PySpark fails on APIs, Modin on memory, Dask mixes hang+OOM
    assert counts["pyspark"]["api"] == 3
    assert counts["modin"]["api"] == 0
    assert counts["modin"].get("oom", 0) >= 8
    assert counts["modin"]["oom"] >= counts["dask"]["oom"]
    assert counts["dask"]["api"] == 0
    assert counts["dask"].get("hang", 0) >= 1
    assert counts["dask"].get("oom", 0) >= 1
