"""Table I — number of failed TPC-H queries per engine and scale factor.

Paper values::

    SF    pandas  PySpark  Dask  Modin
    10    0       3        1     0
    100   17      3        1     1
    1000  22      4        5     22

The reproduction runs all 22 queries through every engine profile at the
three (laptop-mapped) scale points and counts non-OK results. Expected
shape: pandas and Modin collapse as data outgrows memory, Dask degrades,
PySpark's failures are API-compatibility ones, Xorbits stays at zero.
"""

from harness import (
    SCALE_POINTS,
    format_table,
    report,
    run_tpch_engine,
    tpch_tables_for,
)

PAPER = {
    "SF10": {"pandas": 0, "pyspark": 3, "dask": 1, "modin": 0},
    "SF100": {"pandas": 17, "pyspark": 3, "dask": 1, "modin": 1},
    "SF1000": {"pandas": 22, "pyspark": 4, "dask": 5, "modin": 22},
}

ENGINES = ["pandas", "pyspark", "dask", "modin", "xorbits"]


def run_table1() -> dict:
    measured = {}
    for label, point in SCALE_POINTS.items():
        tables, data_bytes = tpch_tables_for(point)
        measured[label] = {}
        for engine in ENGINES:
            results = run_tpch_engine(engine, point, tables, data_bytes)
            measured[label][engine] = sum(
                1 for r in results.values() if r.failed
            )
    return measured


def test_table1_failed_queries(benchmark):
    measured = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    rows = []
    for label in SCALE_POINTS:
        row = [label]
        for engine in ENGINES:
            got = measured[label][engine]
            paper = PAPER[label].get(engine, 0)
            row.append(f"{got} (paper {paper})" if engine != "xorbits"
                       else f"{got}")
        rows.append(row)
    text = format_table(
        "Table I: failed TPC-H queries (measured vs paper)",
        ["SF", *ENGINES], rows,
        note="Xorbits has no paper column in Table I; the paper reports "
             "it completing all queries.",
    )
    report("table1_failed_queries", text)

    # shape assertions: the qualitative claims of the table
    # pandas degrades monotonically and collapses at the largest scale
    assert (measured["SF10"]["pandas"] < measured["SF100"]["pandas"]
            < measured["SF1000"]["pandas"])
    assert measured["SF1000"]["pandas"] >= 12
    # Modin is fine at small scale, dies at large scale
    assert measured["SF10"]["modin"] == 0
    assert measured["SF100"]["modin"] <= 2
    assert measured["SF1000"]["modin"] >= 8
    assert measured["SF1000"]["modin"] > measured["SF1000"]["xorbits"]
    # Xorbits completes everything, everywhere
    for label in measured:
        assert measured[label]["xorbits"] == 0, label
    # PySpark's failures are the three API-compatibility queries
    assert measured["SF10"]["pyspark"] == 3
    assert measured["SF100"]["pyspark"] == 3
