"""Figure 8(b) — TPC-H ad-hoc query performance (SF100 / SF1000).

Paper shape: Xorbits is the fastest and most complete engine on both
scales; the figure reports *relative total time* over the queries every
engine completes (failed queries are excluded, as in the paper).
"""

from harness import (
    SCALE_POINTS,
    format_table,
    report,
    run_tpch_engine,
    tpch_tables_for,
)

ENGINES = ["xorbits", "pyspark", "dask", "modin"]


def run_fig8b() -> dict:
    out: dict = {}
    for label in ("SF100", "SF1000"):
        point = SCALE_POINTS[label]
        tables, data_bytes = tpch_tables_for(point)
        per_engine = {
            engine: run_tpch_engine(engine, point, tables, data_bytes)
            for engine in ENGINES
        }
        # queries completed by every engine (the paper's common subset)
        common = [
            q for q in per_engine["xorbits"]
            if all(not per_engine[e][q].failed for e in ENGINES)
        ]
        out[label] = {
            "common": common,
            "totals": {
                engine: sum(per_engine[engine][q].makespan for q in common)
                for engine in ENGINES
            },
            "completed": {
                engine: sum(
                    1 for r in per_engine[engine].values() if not r.failed
                )
                for engine in ENGINES
            },
        }
    return out


def test_fig8b_tpch(benchmark):
    out = benchmark.pedantic(run_fig8b, rounds=1, iterations=1)
    rows = []
    for label, data in out.items():
        base = data["totals"]["xorbits"]
        for engine in ENGINES:
            total = data["totals"][engine]
            rows.append([
                label, engine, f"{total:.3f}s",
                f"{total / base:.2f}x" if base else "-",
                f"{data['completed'][engine]}/22",
            ])
    text = format_table(
        "Figure 8(b): TPC-H relative total time (common queries only)",
        ["scale", "engine", "total time", "relative to xorbits",
         "queries completed"],
        rows,
        note="Paper shape: Xorbits fastest at both scales and the only "
             "engine completing all 22 queries at SF1000.",
    )
    report("fig8b_tpch", text)

    for label, data in out.items():
        totals = data["totals"]
        assert data["completed"]["xorbits"] == 22
        for engine in ENGINES:
            if engine != "xorbits":
                assert totals[engine] >= totals["xorbits"], (
                    f"{engine} beat xorbits at {label}"
                )
    assert out["SF1000"]["completed"]["modin"] < 22
