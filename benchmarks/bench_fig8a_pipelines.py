"""Figure 8(a) — end-to-end data-science pipeline performance.

Paper shape: Xorbits beats the best baseline on every pipeline; on the
skew-heavy TPCx-AI UC10 join it is 29×/37× faster than Dask/Modin (their
static hash shuffle sends every hot key to one partition, leaving one
busy core); on census/plasticc (single-machine scale-up) pandas is
slowest and Xorbits ~2.6-3.9× faster than the best distributed baseline.
"""

from harness import MiB, format_table, report

from repro.baselines import Workload, make_engine
from repro.workloads.census import CENSUS_FEATURES, census_pipeline, generate_census
from repro.workloads.plasticc import (
    PLASTICC_FEATURES,
    generate_plasticc,
    plasticc_pipeline,
)
from repro.workloads.tpcxai import UC10_FEATURES, generate_uc10, uc10_pipeline

ENGINES = ["pandas", "pyspark", "dask", "modin", "xorbits"]

PAPER_NOTE = (
    "Paper shape: UC10 skewed join — Xorbits 29x faster than Dask, 37x "
    "faster than Modin; census — 2.65x over Modin (best); plasticc — "
    "3.86x over PySpark (best)."
)


def build_workloads():
    return [
        ("tpcxai_uc10",
         Workload("uc10", uc10_pipeline, UC10_FEATURES),
         generate_uc10(n_customers=300, n_transactions=60_000, skew=0.8),
         {"n_workers": 2, "memory_limit": 96 * MiB,
          "chunk_store_limit": 192 * 1024}),
        ("census",
         Workload("census", census_pipeline, CENSUS_FEATURES),
         generate_census(n_rows=40_000),
         {"n_workers": 1, "memory_limit": 256 * MiB,
          "chunk_store_limit": 256 * 1024}),
        ("plasticc",
         Workload("plasticc", plasticc_pipeline, PLASTICC_FEATURES),
         generate_plasticc(n_objects=1_500, points_per_object=24),
         {"n_workers": 1, "memory_limit": 256 * MiB,
          "chunk_store_limit": 256 * 1024}),
    ]


def run_fig8a() -> dict:
    measured: dict = {}
    for name, workload, tables, limits in build_workloads():
        measured[name] = {}
        for engine_name in ENGINES:
            engine = make_engine(engine_name)
            result = engine.run(workload, tables, **limits)
            measured[name][engine_name] = (
                result.makespan if result.status == "ok" else None
            )
    return measured


def test_fig8a_pipelines(benchmark):
    measured = benchmark.pedantic(run_fig8a, rounds=1, iterations=1)
    rows = []
    for name, per_engine in measured.items():
        row = [name]
        for engine in ENGINES:
            value = per_engine[engine]
            row.append("FAIL" if value is None else f"{value:.4f}s")
        x = per_engine["xorbits"]
        best_other = min(
            (v for e, v in per_engine.items()
             if e != "xorbits" and v is not None),
            default=None,
        )
        row.append(f"{best_other / x:.2f}x" if best_other and x else "-")
        rows.append(row)
    text = format_table(
        "Figure 8(a): DS pipelines, virtual seconds (lower is better)",
        ["pipeline", *ENGINES, "xorbits speedup vs best"], rows,
        note=PAPER_NOTE,
    )
    report("fig8a_pipelines", text)

    uc10 = measured["tpcxai_uc10"]
    assert uc10["xorbits"] is not None
    for other in ("dask", "modin"):
        if uc10[other] is not None:
            assert uc10[other] > 2.0 * uc10["xorbits"], (
                f"skewed join must punish {other}'s static shuffle"
            )
    for pipeline in ("census", "plasticc"):
        per = measured[pipeline]
        assert per["pandas"] == max(
            v for v in per.values() if v is not None
        ), "single-threaded pandas must be slowest on scale-up pipelines"
        assert per["xorbits"] == min(v for v in per.values() if v is not None)
