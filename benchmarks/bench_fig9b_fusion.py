"""Figure 9(b) — ablation: graph-level and operator-level fusion.

Paper shape: coloring-based graph fusion gives 3.80x (Q7) and 2.04x (Q8);
operator-level fusion adds ~16% on top.
"""

from harness import MiB, format_table, report

from repro.config import default_config
from repro.core import Session
from repro.dataframe import from_frame
from repro.workloads.tpch import ALL_QUERIES, generate_tables
from repro.workloads.tpch.dbgen import dataset_bytes
from repro.workloads.tpch.queries import materialize

QUERIES = ["q7", "q8", "q1"]
PAPER_GRAPH = {"q7": 3.80, "q8": 2.04}


def _run(name: str, tables, graph_fusion: bool, operator_fusion: bool,
         chunk_limit: int) -> float:
    cfg = default_config()
    cfg.graph_fusion = graph_fusion
    cfg.operator_fusion = operator_fusion
    cfg.chunk_store_limit = chunk_limit
    cfg.tree_reduce_threshold = chunk_limit // 2
    cfg.cluster.memory_limit = 512 * MiB
    session = Session(cfg)
    try:
        handles = {k: from_frame(v, session) for k, v in tables.items()}
        materialize(ALL_QUERIES[name](handles))
        return session.cluster.clock.makespan
    finally:
        session.close()


def run_fig9b():
    tables = generate_tables(sf=3.0, seed=1)
    chunk_limit = max(dataset_bytes(tables) // 64, 16 * 1024)
    out = {}
    for name in QUERIES:
        both = _run(name, tables, True, True, chunk_limit)
        no_g = _run(name, tables, False, True, chunk_limit)
        no_o = _run(name, tables, True, False, chunk_limit)
        out[name] = {"both": both, "no_graph": no_g, "no_op": no_o}
    return out


def test_fig9b_fusion(benchmark):
    out = benchmark.pedantic(run_fig9b, rounds=1, iterations=1)
    rows = []
    for name, t in out.items():
        g_speedup = t["no_graph"] / t["both"]
        o_gain = (t["no_op"] - t["both"]) / t["no_op"] * 100
        paper = f"{PAPER_GRAPH[name]:.2f}x" if name in PAPER_GRAPH else "-"
        rows.append([
            name, f"{t['both']:.4f}s", f"{t['no_graph']:.4f}s",
            f"{g_speedup:.2f}x", paper, f"{o_gain:+.1f}%",
        ])
    text = format_table(
        "Figure 9(b): fusion ablation",
        ["query", "g+o on", "graph fusion off", "graph speedup",
         "paper (graph)", "op-fusion gain"],
        rows,
        note="Paper shape: graph-level fusion 3.80x/2.04x on Q7/Q8; "
             "operator-level fusion ~16% on elementwise-heavy queries.",
    )
    report("fig9b_fusion", text)

    for name, t in out.items():
        assert t["no_graph"] > t["both"], f"graph fusion must help {name}"
    assert out["q1"]["no_op"] >= out["q1"]["both"]
