"""Extra ablations beyond the paper's Figure 9: the design choices
DESIGN.md calls out — auto merge, the combine stage, locality-aware
scheduling, and spill-to-disk — each exercised by a workload built to
engage that specific mechanism.
"""

import numpy as np

from harness import MiB, format_table, report

from repro.config import calibrate_cost_model, default_config
from repro.core import Session
from repro.dataframe import from_frame
from repro.errors import WorkerOutOfMemory
from repro.frame import DataFrame as LocalFrame


def make_data(n=40_000, seed=0):
    rng = np.random.default_rng(seed)
    return LocalFrame({
        "k": rng.integers(0, n // 2, n),   # high-cardinality group key
        "v": rng.normal(size=n),
        "w": rng.normal(size=n),
    })


def run_once(local, fn, memory_ratio=4.0, chunk_fraction=1 / 64,
             **overrides):
    data_bytes = local.nbytes
    cfg = default_config()
    cfg.chunk_store_limit = max(int(data_bytes * chunk_fraction), 4096)
    cfg.tree_reduce_threshold = cfg.chunk_store_limit // 2
    cfg.cluster.memory_limit = max(int(data_bytes * memory_ratio), 65536)
    calibrate_cost_model(cfg, data_bytes)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    session = Session(cfg)
    try:
        df = from_frame(local, session)
        fn(df).fetch()
        report = session.last_report
        return {
            "makespan": session.cluster.clock.makespan,
            "nodes": report.n_graph_nodes,
            "subtasks": report.n_subtasks,
        }
    except WorkerOutOfMemory:
        return None
    finally:
        session.close()


def filtered_sort(df):
    # a selective filter leaves many small chunks; auto merge glues them
    kept = df[df["v"] > 0.8]
    return kept.sort_values("w")


def wide_groupby(df):
    # high-cardinality groupby: the aggregate barely shrinks, so the
    # combine stage is what keeps any single node's fan-in bounded
    return df.groupby("k").agg({"v": "sum", "w": "mean"})


def run_ablations():
    local = make_data()
    return {
        "auto_merge_on": run_once(local, filtered_sort),
        "auto_merge_off": run_once(local, filtered_sort, auto_merge=False),
        "combine_on": run_once(local, wide_groupby, dynamic_tiling=False),
        "combine_off": run_once(local, wide_groupby, dynamic_tiling=False,
                                combine_stage=False),
        "locality_on": run_once(local, wide_groupby),
        "locality_off": run_once(local, wide_groupby,
                                 locality_scheduling=False),
        "spill_on_tight": run_once(local, wide_groupby, memory_ratio=0.3),
        "spill_off_tight": run_once(local, wide_groupby, memory_ratio=0.3,
                                    spill_to_disk=False),
    }


def test_extra_ablations(benchmark):
    out = benchmark.pedantic(run_ablations, rounds=1, iterations=1)

    def fmt(result):
        if result is None:
            return "OOM"
        return f"{result['makespan']:.3f}s / {result['nodes']}n"

    rows = [
        ["auto merge (filter+sort)", fmt(out["auto_merge_on"]),
         fmt(out["auto_merge_off"])],
        ["combine stage (wide groupby, static)", fmt(out["combine_on"]),
         fmt(out["combine_off"])],
        ["locality scheduling", fmt(out["locality_on"]),
         fmt(out["locality_off"])],
        ["spill under 0.3x memory", fmt(out["spill_on_tight"]),
         fmt(out["spill_off_tight"])],
    ]
    text = format_table(
        "Extra ablations (makespan / graph nodes)",
        ["mechanism", "on", "off"], rows,
        note="auto merge shrinks the shuffle-stage graph; disabling spill "
             "under tight memory must OOM; the others must not regress.",
    )
    report("extra_ablations", text)

    # auto merge produces a smaller shuffle graph
    assert out["auto_merge_on"]["nodes"] < out["auto_merge_off"]["nodes"]
    # without spill, tight memory kills the job; with spill it completes
    assert out["spill_on_tight"] is not None
    assert out["spill_off_tight"] is None
    # switches must not break results
    assert out["combine_on"] is not None and out["combine_off"] is not None
    assert out["locality_off"] is not None
