"""Wall-clock benchmark: serial vs thread-pool vs process-pool execution.

Unlike the figure/table benches (which report *virtual* time), this one
measures real elapsed seconds, because the band runners are wall-clock
optimizations by design: they must leave every simulated number
untouched (asserted here) while finishing sooner on multi-core hosts.

Workloads: TPC-H Q1/Q5, the Fig-8a pipelines (TPCx-AI UC10, census) and
a 64-chunk BLAS-heavy tensor workload.  Thread mode only overlaps
kernels that release the GIL (BLAS); process mode is the one that helps
the pure-Python/pandas kernels, which is where the thread runner
plateaued.

Writes ``BENCH_wallclock.json`` (repo root and ``benchmarks/results/``)
with one row per (workload, mode): ``{workload, mode, seconds,
speedup}`` so future PRs can track the trajectory.  ``cpu_count`` and
``multicore`` are recorded so 1-core CI numbers are never mistaken for
a speedup measurement.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_wallclock.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from harness import MiB, format_table, save_bench_json  # noqa: E402

from repro.config import default_config  # noqa: E402
from repro.core.session import Session  # noqa: E402
from repro.dataframe import from_frame  # noqa: E402
from repro.tensor import rand  # noqa: E402
from repro.workloads.census import census_pipeline, generate_census  # noqa: E402
from repro.workloads.tpch import generate_tables  # noqa: E402
from repro.workloads.tpch.queries import ALL_QUERIES, materialize  # noqa: E402
from repro.workloads.tpcxai import generate_uc10, uc10_pipeline  # noqa: E402

import numpy as np  # noqa: E402

#: wall-clock speedup targets on a multi-core runner (acceptance bars).
TARGET_SPEEDUP = 1.5          # thread mode, GIL-releasing kernels
PROCESS_TARGET_SPEEDUP = 2.5  # process mode, GIL-bound kernels
MULTICORE = (os.cpu_count() or 1) >= 2

MODES = ("serial", "thread", "process")


def _configure(cfg, mode: str) -> None:
    cfg.parallel_execution = mode != "serial"
    cfg.execution_mode = "process" if mode == "process" else "thread"


def _warm(session, mode: str) -> None:
    """Spawn pool workers before the timer starts: measured speedup
    should reflect steady state, not interpreter spawn cost."""
    if mode == "process":
        session.cluster.procpool_client().warm()


def _run_frames(fn, tables, *, mode: str, n_workers: int,
                chunk_store_limit: int, memory_limit: int):
    cfg = default_config()
    cfg.cluster.n_workers = n_workers
    cfg.cluster.memory_limit = memory_limit
    cfg.chunk_store_limit = chunk_store_limit
    _configure(cfg, mode)
    session = Session(cfg)
    try:
        handles = {
            name: from_frame(frame, session) for name, frame in tables.items()
        }
        _warm(session, mode)
        start = time.perf_counter()
        value = materialize(fn(handles))
        seconds = time.perf_counter() - start
        return value, seconds, session.cluster.clock.makespan
    finally:
        session.close()


def _run_wide_tensor(*, mode: str):
    """64 independent BLAS-heavy chunks on an 8-band cluster."""
    cfg = default_config()
    cfg.cluster.n_workers = 4  # x2 bands -> 8 logical slots
    cfg.chunk_store_limit = 256 * 1024  # 16 MiB tensor -> 64 chunks
    _configure(cfg, mode)

    def crunch(block: np.ndarray) -> np.ndarray:
        out = block
        for _ in range(60):  # matmul chain: releases the GIL in BLAS
            out = block @ (block.T @ out) / np.float64(block.shape[0])
        return out

    session = Session(cfg)
    try:
        t = rand(65536, 32, seed=13, session=session)
        heavy = t.map_blocks(crunch, out_cols=32).sum()
        _warm(session, mode)
        start = time.perf_counter()
        value = np.asarray(heavy.fetch())
        seconds = time.perf_counter() - start
        return value, seconds, session.cluster.clock.makespan
    finally:
        session.close()


def build_workloads():
    tpch = generate_tables(sf=0.5, seed=1)
    tpch_bytes = sum(frame.nbytes for frame in tpch.values())
    tpch_limits = dict(
        n_workers=4,
        chunk_store_limit=max(tpch_bytes // 48, 16 * 1024),
        memory_limit=256 * MiB,
    )
    uc10 = generate_uc10(n_customers=300, n_transactions=60_000, skew=0.8)
    census = generate_census(n_rows=40_000)
    return [
        ("tpch_q1", lambda mode: _run_frames(
            ALL_QUERIES["q1"], tpch, mode=mode, **tpch_limits)),
        ("tpch_q5", lambda mode: _run_frames(
            ALL_QUERIES["q5"], tpch, mode=mode, **tpch_limits)),
        ("fig8a_uc10", lambda mode: _run_frames(
            uc10_pipeline, uc10, mode=mode, n_workers=2,
            chunk_store_limit=192 * 1024, memory_limit=96 * MiB)),
        ("fig8a_census", lambda mode: _run_frames(
            census_pipeline, census, mode=mode, n_workers=1,
            chunk_store_limit=256 * 1024, memory_limit=256 * MiB)),
        ("wide_tensor", lambda mode: _run_wide_tensor(mode=mode)),
    ]


def _values_match(a, b) -> bool:
    if hasattr(a, "equals"):
        return bool(a.equals(b))
    a, b = np.asarray(a), np.asarray(b)
    return a.shape == b.shape and a.tobytes() == b.tobytes()


def run_wallclock() -> list[dict]:
    rows: list[dict] = []
    for name, runner in build_workloads():
        results = {mode: runner(mode) for mode in MODES}
        base_value, base_seconds, base_makespan = results["serial"]
        for mode in MODES[1:]:
            value, _, makespan = results[mode]
            if not _values_match(base_value, value):
                raise AssertionError(
                    f"{name}: {mode} result diverged from serial")
            if base_makespan != makespan:
                raise AssertionError(
                    f"{name}: {mode} virtual makespan diverged "
                    f"({base_makespan} vs {makespan})"
                )
        for mode in MODES:
            seconds = results[mode][1]
            speedup = base_seconds / seconds if seconds else 0.0
            rows.append({"workload": name, "mode": mode,
                         "seconds": round(seconds, 4),
                         "speedup": round(speedup, 3)})
    return rows


def save_and_render(rows: list[dict]) -> str:
    payload = {
        "benchmark": "wallclock_serial_vs_thread_vs_process",
        "cpu_count": os.cpu_count(),
        "multicore": MULTICORE,
        "target_speedup": TARGET_SPEEDUP,
        "process_target_speedup": PROCESS_TARGET_SPEEDUP,
        "rows": rows,
    }
    save_bench_json("BENCH_wallclock.json", payload)

    by_workload: dict[str, dict[str, dict]] = {}
    for row in rows:
        by_workload.setdefault(row["workload"], {})[row["mode"]] = row
    table_rows = [
        [name,
         f"{modes['serial']['seconds']:.3f}s",
         f"{modes['thread']['seconds']:.3f}s",
         f"{modes['thread']['speedup']:.2f}x",
         f"{modes['process']['seconds']:.3f}s",
         f"{modes['process']['speedup']:.2f}x"]
        for name, modes in by_workload.items()
    ]
    return format_table(
        "Wall-clock: serial vs thread vs process subtask execution",
        ["workload", "serial", "thread", "t-speedup", "process",
         "p-speedup"], table_rows,
        note=(f"cpus={os.cpu_count()} (multicore={MULTICORE}); virtual "
              "SimReport numbers verified identical across all modes. "
              "Speedups measured on a 1-core host are not speedup "
              "measurements."),
    )


def main() -> int:
    rows = run_wallclock()
    print(save_and_render(rows))
    best_thread = max(
        (row["speedup"] for row in rows if row["mode"] == "thread"),
        default=0.0,
    )
    best_process = max(
        (row["speedup"] for row in rows if row["mode"] == "process"),
        default=0.0,
    )
    if MULTICORE and best_thread < TARGET_SPEEDUP:
        print(f"WARNING: best thread speedup {best_thread:.2f}x below the "
              f"{TARGET_SPEEDUP}x target on a {os.cpu_count()}-cpu host")
        return 1
    if MULTICORE and best_process < PROCESS_TARGET_SPEEDUP:
        print(f"WARNING: best process speedup {best_process:.2f}x below "
              f"the {PROCESS_TARGET_SPEEDUP}x target on a "
              f"{os.cpu_count()}-cpu host")
        return 1
    return 0


def test_wallclock_speedup(benchmark=None):
    """Pytest entry: determinism always; the speedup bar only multi-core."""
    rows = run_wallclock()
    save_and_render(rows)
    wide = next(
        row for row in rows
        if row["workload"] == "wide_tensor" and row["mode"] == "thread"
    )
    if (os.cpu_count() or 1) >= 4:
        assert wide["speedup"] >= TARGET_SPEEDUP, (
            f"wide_tensor parallel speedup {wide['speedup']}x < "
            f"{TARGET_SPEEDUP}x on a {os.cpu_count()}-core host"
        )


if __name__ == "__main__":
    raise SystemExit(main())
