"""Wall-clock benchmark: serial vs event-driven parallel execution.

Unlike the figure/table benches (which report *virtual* time), this one
measures real elapsed seconds, because the parallel band runner is a
wall-clock optimization by design: it must leave every simulated number
untouched (asserted here) while finishing sooner on multi-core hosts.

Workloads: TPC-H Q1/Q5, the Fig-8a pipelines (TPCx-AI UC10, census) and
a 64-chunk BLAS-heavy tensor workload whose kernels release the GIL —
the shape the thread-pool band runner is built for.

Writes ``benchmarks/results/BENCH_wallclock.json`` with one row per
(workload, mode): ``{workload, mode, seconds, speedup}`` so future PRs
can track the trajectory. Run standalone::

    PYTHONPATH=src python benchmarks/bench_wallclock.py
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from harness import MiB, format_table, RESULTS_DIR  # noqa: E402

from repro.config import default_config  # noqa: E402
from repro.core.session import Session  # noqa: E402
from repro.dataframe import from_frame  # noqa: E402
from repro.tensor import rand  # noqa: E402
from repro.workloads.census import census_pipeline, generate_census  # noqa: E402
from repro.workloads.tpch import generate_tables  # noqa: E402
from repro.workloads.tpch.queries import ALL_QUERIES, materialize  # noqa: E402
from repro.workloads.tpcxai import generate_uc10, uc10_pipeline  # noqa: E402

import numpy as np  # noqa: E402

RESULT_PATH = os.path.join(RESULTS_DIR, "BENCH_wallclock.json")

#: wall-clock speedup target on a multi-core runner (acceptance bar).
TARGET_SPEEDUP = 1.5
MULTICORE = (os.cpu_count() or 1) >= 2


def _run_frames(fn, tables, *, parallel: bool, n_workers: int,
                chunk_store_limit: int, memory_limit: int):
    cfg = default_config()
    cfg.cluster.n_workers = n_workers
    cfg.cluster.memory_limit = memory_limit
    cfg.chunk_store_limit = chunk_store_limit
    cfg.parallel_execution = parallel
    session = Session(cfg)
    try:
        handles = {
            name: from_frame(frame, session) for name, frame in tables.items()
        }
        start = time.perf_counter()
        value = materialize(fn(handles))
        seconds = time.perf_counter() - start
        return value, seconds, session.cluster.clock.makespan
    finally:
        session.close()


def _run_wide_tensor(*, parallel: bool):
    """64 independent BLAS-heavy chunks on an 8-band cluster."""
    cfg = default_config()
    cfg.cluster.n_workers = 4  # x2 bands -> 8 logical slots
    cfg.chunk_store_limit = 256 * 1024  # 16 MiB tensor -> 64 chunks
    cfg.parallel_execution = parallel

    def crunch(block: np.ndarray) -> np.ndarray:
        out = block
        for _ in range(60):  # matmul chain: releases the GIL in BLAS
            out = block @ (block.T @ out) / np.float64(block.shape[0])
        return out

    session = Session(cfg)
    try:
        t = rand(65536, 32, seed=13, session=session)
        heavy = t.map_blocks(crunch, out_cols=32).sum()
        start = time.perf_counter()
        value = np.asarray(heavy.fetch())
        seconds = time.perf_counter() - start
        return value, seconds, session.cluster.clock.makespan
    finally:
        session.close()


def build_workloads():
    tpch = generate_tables(sf=0.5, seed=1)
    tpch_bytes = sum(frame.nbytes for frame in tpch.values())
    tpch_limits = dict(
        n_workers=4,
        chunk_store_limit=max(tpch_bytes // 48, 16 * 1024),
        memory_limit=256 * MiB,
    )
    uc10 = generate_uc10(n_customers=300, n_transactions=60_000, skew=0.8)
    census = generate_census(n_rows=40_000)
    return [
        ("tpch_q1", lambda parallel: _run_frames(
            ALL_QUERIES["q1"], tpch, parallel=parallel, **tpch_limits)),
        ("tpch_q5", lambda parallel: _run_frames(
            ALL_QUERIES["q5"], tpch, parallel=parallel, **tpch_limits)),
        ("fig8a_uc10", lambda parallel: _run_frames(
            uc10_pipeline, uc10, parallel=parallel, n_workers=2,
            chunk_store_limit=192 * 1024, memory_limit=96 * MiB)),
        ("fig8a_census", lambda parallel: _run_frames(
            census_pipeline, census, parallel=parallel, n_workers=1,
            chunk_store_limit=256 * 1024, memory_limit=256 * MiB)),
        ("wide_tensor", lambda parallel: _run_wide_tensor(parallel=parallel)),
    ]


def _values_match(a, b) -> bool:
    if hasattr(a, "equals"):
        return bool(a.equals(b))
    a, b = np.asarray(a), np.asarray(b)
    return a.shape == b.shape and a.tobytes() == b.tobytes()


def run_wallclock() -> list[dict]:
    rows: list[dict] = []
    for name, runner in build_workloads():
        serial_value, serial_seconds, serial_makespan = runner(False)
        parallel_value, parallel_seconds, parallel_makespan = runner(True)
        if not _values_match(serial_value, parallel_value):
            raise AssertionError(f"{name}: parallel result diverged from serial")
        if serial_makespan != parallel_makespan:
            raise AssertionError(
                f"{name}: virtual makespan diverged "
                f"({serial_makespan} vs {parallel_makespan})"
            )
        speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
        rows.append({"workload": name, "mode": "serial",
                     "seconds": round(serial_seconds, 4), "speedup": 1.0})
        rows.append({"workload": name, "mode": "parallel",
                     "seconds": round(parallel_seconds, 4),
                     "speedup": round(speedup, 3)})
    return rows


def save_and_render(rows: list[dict]) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "benchmark": "wallclock_serial_vs_parallel",
        "cpu_count": os.cpu_count(),
        "target_speedup": TARGET_SPEEDUP,
        "rows": rows,
    }
    with open(RESULT_PATH, "w") as f:
        json.dump(payload, f, indent=2)

    by_workload: dict[str, dict[str, dict]] = {}
    for row in rows:
        by_workload.setdefault(row["workload"], {})[row["mode"]] = row
    table_rows = [
        [name,
         f"{modes['serial']['seconds']:.3f}s",
         f"{modes['parallel']['seconds']:.3f}s",
         f"{modes['parallel']['speedup']:.2f}x"]
        for name, modes in by_workload.items()
    ]
    return format_table(
        "Wall-clock: serial vs parallel subtask execution",
        ["workload", "serial", "parallel", "speedup"], table_rows,
        note=(f"cpus={os.cpu_count()}; virtual SimReport numbers verified "
              "identical across modes. Speedup needs a multi-core runner."),
    )


def main() -> int:
    rows = run_wallclock()
    print(save_and_render(rows))
    best = max(
        (row["speedup"] for row in rows if row["mode"] == "parallel"),
        default=0.0,
    )
    if MULTICORE and best < TARGET_SPEEDUP:
        print(f"WARNING: best speedup {best:.2f}x below the "
              f"{TARGET_SPEEDUP}x target on a {os.cpu_count()}-cpu host")
        return 1
    return 0


def test_wallclock_speedup(benchmark=None):
    """Pytest entry: determinism always; the speedup bar only multi-core."""
    rows = run_wallclock()
    save_and_render(rows)
    wide = next(
        row for row in rows
        if row["workload"] == "wide_tensor" and row["mode"] == "parallel"
    )
    if (os.cpu_count() or 1) >= 4:
        assert wide["speedup"] >= TARGET_SPEEDUP, (
            f"wide_tensor parallel speedup {wide['speedup']}x < "
            f"{TARGET_SPEEDUP}x on a {os.cpu_count()}-core host"
        )


if __name__ == "__main__":
    raise SystemExit(main())
