"""Figure 8(d) — weak-scaling throughput of tall-and-skinny QR.

Paper shape: both engines use the same MapReduce TSQR algorithm and the
same NumPy kernel; Xorbits is ~1.74x faster because auto rechunk picks
the block layout (no user-visible rechunk materialization) and subtasks
schedule NUMA-locally.
"""

from harness import MiB, format_table, report

from repro.baselines import PROFILES
from repro.workloads.arrays import socket_config, weak_scaling

SOCKETS = [1, 2, 4]
BASE_ROWS = 24_000
N_COLS = 32


def _config_factory(profile_name):
    profile = PROFILES[profile_name]

    def factory(sockets):
        cfg = profile.build_config(
            n_workers=4, memory_limit=512 * MiB,
            chunk_store_limit=2 * MiB,
        )
        return socket_config(sockets, cfg)

    return factory


def run_fig8d():
    xorbits = weak_scaling("qr", SOCKETS, BASE_ROWS, N_COLS,
                           _config_factory("xorbits"))
    dask = weak_scaling("qr", SOCKETS, BASE_ROWS, N_COLS,
                        _config_factory("dask"), manual_rechunk=True)
    return {"xorbits": xorbits, "dask": dask}


def test_fig8d_qr(benchmark):
    out = benchmark.pedantic(run_fig8d, rounds=1, iterations=1)
    rows = []
    ratios = []
    for x, d in zip(out["xorbits"], out["dask"]):
        ratio = x.throughput / d.throughput if d.throughput else float("inf")
        ratios.append(ratio)
        rows.append([
            x.sockets, f"{x.n_rows}x{x.n_cols}",
            f"{x.throughput / 1e6:.1f} MB/s", f"{d.throughput / 1e6:.1f} MB/s",
            f"{ratio:.2f}x",
        ])
    text = format_table(
        "Figure 8(d): QR decomposition weak scaling (throughput)",
        ["sockets", "problem", "xorbits", "dask (manual rechunk)",
         "xorbits/dask"], rows,
        note="Paper shape: Xorbits ~1.74x Dask on average (same TSQR "
             "algorithm; auto rechunk + locality are the difference).",
    )
    report("fig8d_qr", text)

    assert all(r > 1.0 for r in ratios), "xorbits must beat dask on QR"
    x_throughputs = [r.throughput for r in out["xorbits"]]
    assert x_throughputs[-1] > x_throughputs[0]
