"""Table III / Table IV — workload and framework inventory.

Descriptive tables: regenerated so the benchmark suite documents exactly
what runs where, alongside the paper's original sizes.
"""

from harness import format_table, report

from repro.workloads import WORKLOAD_INVENTORY
from repro.baselines import PROFILES


def test_table3_workloads(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            [w["name"], w["paper_size"], w["workers"], w["type"], w["source"]]
            for w in WORKLOAD_INVENTORY
        ],
        rounds=1, iterations=1,
    )
    text = format_table(
        "Table III: workloads (paper sizes; this repo runs scaled-down "
        "equivalents)",
        ["workload", "paper size", "workers", "type", "module"], rows,
    )
    report("table3_workloads", text)
    assert len(rows) == 7


def test_table4_frameworks(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            [p.name, p.display_name,
             "A+D" if p.name == "xorbits" else "D",
             ", ".join(sorted(p.unsupported)) or "-"]
            for p in PROFILES.values()
        ],
        rounds=1, iterations=1,
    )
    text = format_table(
        "Table IV: engine profiles standing in for the paper's baselines",
        ["profile", "stands in for", "API", "unsupported tags"], rows,
    )
    report("table4_frameworks", text)
    assert len(rows) == 5
