"""Figure 8(c) — weak-scaling throughput of linear regression.

Paper shape: Xorbits ~5.88x Dask's throughput on average; throughput
grows with socket count (the engine exploits NUMA-aware bands).
"""

from harness import MiB, format_table, report

from repro.baselines import PROFILES
from repro.workloads.arrays import socket_config, weak_scaling

SOCKETS = [1, 2, 4]
BASE_ROWS = 40_000
N_COLS = 24


def _config_factory(profile_name):
    profile = PROFILES[profile_name]

    def factory(sockets):
        cfg = profile.build_config(
            n_workers=4, memory_limit=512 * MiB,
            chunk_store_limit=2 * MiB,
        )
        return socket_config(sockets, cfg)

    return factory


def run_fig8c():
    xorbits = weak_scaling("lr", SOCKETS, BASE_ROWS, N_COLS,
                           _config_factory("xorbits"))
    dask = weak_scaling("lr", SOCKETS, BASE_ROWS, N_COLS,
                        _config_factory("dask"))
    return {"xorbits": xorbits, "dask": dask}


def test_fig8c_linear_regression(benchmark):
    out = benchmark.pedantic(run_fig8c, rounds=1, iterations=1)
    rows = []
    ratios = []
    for x, d in zip(out["xorbits"], out["dask"]):
        ratio = x.throughput / d.throughput if d.throughput else float("inf")
        ratios.append(ratio)
        rows.append([
            x.sockets, f"{x.n_rows}x{x.n_cols}",
            f"{x.throughput / 1e6:.1f} MB/s", f"{d.throughput / 1e6:.1f} MB/s",
            f"{ratio:.2f}x",
        ])
    text = format_table(
        "Figure 8(c): linear regression weak scaling (throughput)",
        ["sockets", "problem", "xorbits", "dask", "xorbits/dask"], rows,
        note="Paper shape: Xorbits ~5.88x Dask on average; throughput "
             "increases with sockets.",
    )
    report("fig8c_linear_regression", text)

    assert all(r > 1.5 for r in ratios), "xorbits must clearly beat dask"
    x_throughputs = [r.throughput for r in out["xorbits"]]
    assert x_throughputs[-1] > x_throughputs[0], (
        "weak scaling: throughput must grow with sockets"
    )
