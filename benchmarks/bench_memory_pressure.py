"""Memory-pressure benchmark: shrinking worker budgets (Table II).

Runs TPC-H Q5 and a shuffle-heavy groupby at 100%, 50% and 25% of a
"comfortable" per-worker budget (1.25x the workload's unconstrained
per-worker peak), once with the full memory-pressure machinery
(admission-controlled dispatch + the OOM recovery ladder) and once with
it disabled (the no-backpressure seed engine). The full engine must
complete every point with results identical to the unconstrained run;
the seed engine is expected to OOM as the budget shrinks — the paper's
"OOM or Killed" column in miniature.

Writes ``benchmarks/results/BENCH_memory.json``. Run standalone::

    PYTHONPATH=src python benchmarks/bench_memory_pressure.py [--smoke]
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from harness import format_table, RESULTS_DIR, save_bench_json  # noqa: E402

from repro import frame as pf  # noqa: E402
from repro.config import default_config  # noqa: E402
from repro.core.session import Session  # noqa: E402
from repro.dataframe import from_frame  # noqa: E402
from repro.errors import WorkerOutOfMemory  # noqa: E402
from repro.workloads.tpch import generate_tables  # noqa: E402
from repro.workloads.tpch.queries import ALL_QUERIES, materialize  # noqa: E402

RESULT_PATH = os.path.join(RESULTS_DIR, "BENCH_memory.json")

FAULT_SEED = 20240806

#: budget points as fractions of the comfortable per-worker budget.
FRACTIONS = [1.0, 0.5, 0.25]


def q5_workload(sf: float):
    def run(session: Session):
        tables = generate_tables(sf=sf, seed=7)
        handles = {
            name: from_frame(frame, session)
            for name, frame in tables.items()
        }
        return materialize(ALL_QUERIES["q5"](handles))
    return run, {"chunk_store_limit": 64 * 1024}


def groupby_workload(rows: int):
    def run(session: Session):
        rng = np.random.default_rng(11)
        local = pf.DataFrame({
            "k": rng.integers(0, 500, rows),
            "v": rng.normal(size=rows),
        })
        return from_frame(local, session).groupby("k").agg(
            {"v": "sum"}
        ).fetch()
    return run, {"chunk_store_limit": 4_000, "tree_reduce_threshold": 1}


def make_session(overrides: dict, memory_limit: int | None,
                 full_engine: bool) -> Session:
    cfg = default_config()
    cfg.cluster.n_workers = 4
    cfg.faults.seed = FAULT_SEED
    for name, value in overrides.items():
        setattr(cfg, name, value)
    if memory_limit is not None:
        cfg.cluster.memory_limit = memory_limit
    cfg.admission_control = full_engine
    cfg.oom_recovery = full_engine
    return Session(cfg)


def run_point(workload, overrides: dict, memory_limit: int | None,
              full_engine: bool):
    session = make_session(overrides, memory_limit, full_engine)
    try:
        try:
            value = workload(session)
        except WorkerOutOfMemory:
            return None, {"status": "oom"}
        report = session.executor.report
        peak = max(session.cluster.peak_memory().values(), default=0)
        return value, {
            "status": "ok",
            "makespan": round(session.cluster.clock.makespan, 4),
            "peak_memory": peak,
            "admission_wait_time": round(report.admission_wait_time, 4),
            "oom_retries": report.oom_retries,
            "degraded_subtasks": report.degraded_subtasks,
            "pressure_splits": report.pressure_splits,
            "forced_spill_bytes": report.forced_spill_bytes,
            "spilled_bytes": session.storage.spilled_bytes(),
        }
    finally:
        session.close()


def same_result(actual, expected) -> bool:
    if hasattr(expected, "equals"):
        return bool(expected.equals(actual))
    return (np.asarray(actual).tobytes() == np.asarray(expected).tobytes())


def run_workload(name: str, workload, overrides: dict) -> list[dict]:
    expected, stats = run_point(workload, overrides, None, True)
    if stats["status"] != "ok":
        raise AssertionError(f"{name}: unconstrained run failed")
    # comfortable = 1.25x the unconstrained per-worker peak, 4 KiB aligned
    comfortable = ((stats["peak_memory"] * 5 // 4) // 4096 + 1) * 4096
    rows: list[dict] = []
    for fraction in FRACTIONS:
        budget = int(comfortable * fraction)
        for engine, full in (("full", True), ("no-backpressure", False)):
            value, point = run_point(workload, overrides, budget, full)
            row = {
                "workload": name,
                "engine": engine,
                "budget_fraction": fraction,
                "memory_limit": budget,
                **point,
            }
            if point["status"] == "ok":
                if not same_result(value, expected):
                    raise AssertionError(
                        f"{name}@{fraction:.0%} ({engine}): result "
                        "diverged from the unconstrained run"
                    )
                row["result_identical"] = True
            rows.append(row)
    return rows


def run_bench(smoke: bool) -> list[dict]:
    sf = 0.25 if smoke else 1.0
    rows = []
    rows += run_workload("tpch_q5", *q5_workload(sf))
    rows += run_workload("shuffle_groupby",
                         *groupby_workload(5_000 if smoke else 20_000))
    return rows


def save_and_render(rows: list[dict], smoke: bool) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "benchmark": "memory_pressure_shrinking_budget",
        "smoke": smoke,
        "fault_seed": FAULT_SEED,
        "fractions": FRACTIONS,
        "rows": rows,
    }
    save_bench_json("BENCH_memory.json", payload)

    table_rows = []
    for row in rows:
        if row["status"] == "ok":
            table_rows.append([
                row["workload"], f"{row['budget_fraction']:.0%}",
                row["engine"], "ok",
                f"{row['makespan']:.3f}s",
                f"{row['admission_wait_time']:.3f}s",
                str(row["oom_retries"]),
                str(row["pressure_splits"]),
            ])
        else:
            table_rows.append([
                row["workload"], f"{row['budget_fraction']:.0%}",
                row["engine"], "OOM", "-", "-", "-", "-",
            ])
    return format_table(
        "Memory pressure: shrinking worker budgets",
        ["workload", "budget", "engine", "status", "makespan",
         "adm. wait", "oom retries", "re-tiles"],
        table_rows,
        note=("budget = fraction of 1.25x the unconstrained per-worker "
              "peak; every completing run's result is verified identical "
              "to the unconstrained run (paper Table II, 'OOM or "
              "Killed')."),
    )


def main() -> int:
    smoke = "--smoke" in sys.argv[1:]
    rows = run_bench(smoke)
    print(save_and_render(rows, smoke))
    full = [r for r in rows if r["engine"] == "full"]
    seed = [r for r in rows if r["engine"] == "no-backpressure"]
    if any(r["status"] != "ok" for r in full):
        print("WARNING: the full engine OOMed inside the budget grid")
        return 1
    if all(r["status"] == "ok" for r in seed):
        print("WARNING: the no-backpressure engine survived every "
              "budget; the grid is not tight enough to show the gap")
        return 1
    return 0


def test_memory_pressure_bench(benchmark=None):
    """Pytest entry: the full engine completes every budget point the
    seed engine cannot, with identical results."""
    rows = run_bench(smoke=True)
    save_and_render(rows, smoke=True)
    full = [r for r in rows if r["engine"] == "full"]
    seed = [r for r in rows if r["engine"] == "no-backpressure"]
    assert all(r["status"] == "ok" for r in full)
    assert all(r.get("result_identical") for r in full)
    assert any(r["status"] == "oom" for r in seed)


if __name__ == "__main__":
    raise SystemExit(main())
